//! The unified batched search engine.
//!
//! Every recipe search in this crate — the Eq.-1 security search, the
//! attacker's PPA re-synthesis (Fig. 5), the joint security+PPA
//! scalarisation, the REINFORCE episodes, and the adversarial inner loop
//! of Algorithm 1 — is the same shape: propose recipes, synthesise each
//! candidate from a fixed base network, score the deployed result, feed
//! the score back to a search rule. This module factors that shape into
//! three pieces:
//!
//! 1. [`RecipeTrie`] (in [`crate::recipe`]): synthesis intermediates
//!    shared across sibling proposals, `Arc`-handed to callers.
//! 2. [`SearchObjective`]: one trait for "score a deployed network",
//!    batch-first so implementations can fuse the expensive part — the
//!    proxy-accuracy objective folds *all* candidates' key-gate
//!    localities into a single block-diagonal GIN `forward_batch` call,
//!    and the mapped-PPA objectives fan technology mapping out on the
//!    worker pool.
//! 3. [`SearchEngine`]: trie + objective + counters, with a batched
//!    simulated-annealing driver ([`SearchEngine::anneal`]) that
//!    proposes [`SaConfig::proposals`] mutations per temperature step.
//!
//! # Determinism contract
//!
//! All randomness lives on the calling thread, in a fixed draw order:
//! the `K` mutations of a step are drawn first, then the batch is
//! synthesised (pool workers touch no RNG) and scored (batched GIN rows
//! are bit-identical to single-graph forwards; mapping is pure), then
//! Metropolis acceptance walks the ordered batch sequentially — the
//! first accepted candidate advances the current state, later candidates
//! only update the best-seen. Consequences, pinned in
//! `tests/engine_determinism.rs`:
//!
//! * at `proposals = 1` the engine reproduces the serial
//!   [`crate::sa::anneal`] trace bit-for-bit (recipes, objectives,
//!   acceptance flags);
//! * at any `proposals`, traces are bit-identical for every
//!   `ALMOST_JOBS` worker count.

use crate::multi_objective::JointWeights;
use crate::ppa_opt::PpaObjective;
use crate::proxy::ProxyModel;
use crate::recipe::{Recipe, RecipeTrie, TrieStats};
use crate::rl::{reinforce, ReinforceConfig, ReinforceResult};
use crate::sa::{SaConfig, SaIteration, SaTrace};
use almost_aig::{Aig, Pass};
use almost_locking::LockedCircuit;
use almost_netlist::{analyze, map_aig, CellLibrary, MapConfig, PpaReport};
use almost_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One candidate's evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Score {
    /// The search objective (lower is better).
    pub objective: f64,
    /// Proxy-predicted attack accuracy, when the objective evaluates one.
    pub accuracy: Option<f64>,
    /// Mapped area / baseline area, when the objective maps the netlist.
    pub area_ratio: Option<f64>,
    /// Mapped delay / baseline delay, when the objective maps the netlist.
    pub delay_ratio: Option<f64>,
}

impl Score {
    /// A score carrying only an objective value.
    pub fn plain(objective: f64) -> Self {
        Score {
            objective,
            accuracy: None,
            area_ratio: None,
            delay_ratio: None,
        }
    }
}

/// Scores deployed candidate networks. Batch-first: the engine always
/// calls [`SearchObjective::score_batch`], so implementations fuse or
/// fan out as suits them; entry `b` must equal what scoring
/// `candidates[b]` alone would produce (the engine's determinism
/// contract leans on it).
pub trait SearchObjective: Sync {
    /// Scores every candidate, in order.
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score>;
}

/// The Eq.-1 security objective: `|acc − 0.5|` under a proxy attack
/// model. Batch scoring fuses all candidates' localities into one
/// block-diagonal GIN forward pass.
pub struct ProxyAccuracyObjective<'a> {
    /// The locked circuit whose key interface the proxy reads.
    pub locked: &'a LockedCircuit,
    /// The accuracy evaluator.
    pub proxy: &'a ProxyModel,
}

impl SearchObjective for ProxyAccuracyObjective<'_> {
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
        self.proxy
            .predict_accuracy_batch(self.locked, candidates)
            .into_iter()
            .map(|acc| Score {
                objective: (acc - 0.5).abs(),
                accuracy: Some(acc),
                area_ratio: None,
                delay_ratio: None,
            })
            .collect()
    }
}

/// Maps and analyses every candidate, fanned out on the worker pool
/// (job-order reassembly keeps the result worker-count-invariant).
/// Shared by the PPA-bearing objectives so mapping configuration and
/// analysis arity live in one place.
fn mapped_reports(
    candidates: &[Arc<Aig>],
    library: &CellLibrary,
    analysis_seed: u64,
) -> Vec<PpaReport> {
    almost_pool::map_indexed(candidates.to_vec(), |_, aig| {
        let netlist = map_aig(&aig, library, &MapConfig::no_opt());
        analyze(&netlist, &aig, library, 4, analysis_seed)
    })
}

/// An attacker's PPA objective (Fig. 5): minimise mapped delay or area,
/// optionally recording proxy accuracy along the way. Mapping and timing
/// fan out across candidates on the worker pool.
pub struct MappedPpaObjective<'a> {
    /// Record proxy accuracy per candidate (the Fig. 5 series) when set.
    pub accuracy_with: Option<(&'a LockedCircuit, &'a ProxyModel)>,
    /// Which metric the search minimises.
    pub metric: PpaObjective,
    /// Baseline report the ratios are normalised against.
    pub baseline: &'a PpaReport,
    /// Cell library for mapping.
    pub library: &'a CellLibrary,
    /// Seed for the vector-based power/timing analysis.
    pub analysis_seed: u64,
}

impl SearchObjective for MappedPpaObjective<'_> {
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
        let base_area = self.baseline.area.max(1e-9);
        let base_delay = self.baseline.delay.max(1e-9);
        let reports = mapped_reports(candidates, self.library, self.analysis_seed);
        let accuracies: Option<Vec<f64>> = self
            .accuracy_with
            .map(|(locked, proxy)| proxy.predict_accuracy_batch(locked, candidates));
        reports
            .iter()
            .enumerate()
            .map(|(i, report)| Score {
                objective: self.metric.of(report),
                accuracy: accuracies.as_ref().map(|a| a[i]),
                area_ratio: Some(report.area / base_area),
                delay_ratio: Some(report.delay / base_delay),
            })
            .collect()
    }
}

/// The weighted security+PPA scalarisation:
/// `w_sec · |acc − 0.5| / 0.5 + w_area · area/area₀ + w_delay ·
/// delay/delay₀`.
pub struct WeightedJointObjective<'a> {
    /// The locked circuit whose key interface the proxy reads.
    pub locked: &'a LockedCircuit,
    /// The accuracy evaluator.
    pub proxy: &'a ProxyModel,
    /// Scalarisation weights.
    pub weights: JointWeights,
    /// Baseline report the PPA terms are normalised against.
    pub baseline: &'a PpaReport,
    /// Cell library for mapping.
    pub library: &'a CellLibrary,
    /// Seed for the vector-based power/timing analysis.
    pub analysis_seed: u64,
}

impl SearchObjective for WeightedJointObjective<'_> {
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
        let base_area = self.baseline.area.max(1e-9);
        let base_delay = self.baseline.delay.max(1e-9);
        let accuracies = self.proxy.predict_accuracy_batch(self.locked, candidates);
        let reports = mapped_reports(candidates, self.library, self.analysis_seed);
        accuracies
            .into_iter()
            .zip(&reports)
            .map(|(accuracy, report)| {
                let area_ratio = report.area / base_area;
                let delay_ratio = report.delay / base_delay;
                Score {
                    objective: self.weights.security * (accuracy - 0.5).abs() / 0.5
                        + self.weights.area * area_ratio
                        + self.weights.delay * delay_ratio,
                    accuracy: Some(accuracy),
                    area_ratio: Some(area_ratio),
                    delay_ratio: Some(delay_ratio),
                }
            })
            .collect()
    }
}

/// Engine counters: cache behaviour plus evaluation throughput.
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    /// Synthesis-cache counters.
    pub cache: TrieStats,
    /// Candidates evaluated (synthesised + scored).
    pub candidates: usize,
    /// Wall time spent evaluating candidates.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Evaluated candidates per second (0 when nothing ran).
    pub fn candidates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.candidates as f64 / secs
        }
    }

    /// The `[cache]` summary line the harnesses print to stderr.
    pub fn summary(&self) -> String {
        format!(
            "hits {} misses {} evictions {} nodes {} | {} candidates, {:.2} cand/s",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.live_nodes,
            self.candidates,
            self.candidates_per_sec()
        )
    }
}

/// Everything a batched annealing run produces.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// The best recipe seen (initial recipe when nothing beat it).
    pub best: Recipe,
    /// The best recipe's score.
    pub best_score: Score,
    /// The initial recipe's score (evaluated before the first step).
    pub initial_score: Score,
    /// Per-candidate scores, aligned with `trace.iterations`.
    pub scores: Vec<Score>,
    /// The annealing trace, one entry per candidate in proposal order.
    pub trace: SaTrace,
}

/// Trie-backed, pool-parallel, batch-scoring search driver.
pub struct SearchEngine<'a> {
    trie: RecipeTrie,
    objective: &'a dyn SearchObjective,
    candidates: usize,
    elapsed: Duration,
}

impl<'a> SearchEngine<'a> {
    /// An engine synthesising from `base` and scoring with `objective`.
    pub fn new(base: Aig, objective: &'a dyn SearchObjective) -> Self {
        SearchEngine {
            trie: RecipeTrie::new(base),
            objective,
            candidates: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// An engine with an explicit synthesis-cache node budget.
    pub fn with_budget(base: Aig, budget: usize, objective: &'a dyn SearchObjective) -> Self {
        SearchEngine {
            trie: RecipeTrie::with_budget(base, budget),
            objective,
            candidates: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// The base network candidates are synthesised from.
    pub fn base(&self) -> &Aig {
        self.trie.base()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.trie.stats(),
            candidates: self.candidates,
            elapsed: self.elapsed,
        }
    }

    /// Synthesises every recipe through the trie, fanning uncached
    /// suffixes out on the worker pool and committing results in recipe
    /// order (deterministic for any worker count). Duplicate recipes are
    /// synthesised once and share the cached handle.
    pub fn synthesize_batch(&mut self, recipes: &[Recipe]) -> Vec<Arc<Aig>> {
        let mut unique: Vec<&Recipe> = Vec::new();
        let mut dedup: HashMap<&Recipe, usize> = HashMap::new();
        let index_of: Vec<usize> = recipes
            .iter()
            .map(|r| {
                *dedup.entry(r).or_insert_with(|| {
                    unique.push(r);
                    unique.len() - 1
                })
            })
            .collect();

        let plans: Vec<(Arc<Aig>, usize)> =
            unique.iter().map(|r| self.trie.cached_prefix(r)).collect();
        let jobs: Vec<(Arc<Aig>, Vec<Pass>)> = unique
            .iter()
            .zip(&plans)
            .map(|(r, (start, cached))| (start.clone(), r.passes()[*cached..].to_vec()))
            .collect();
        // Pure pass application per job — no RNG, no shared state — so
        // job-order reassembly makes the batch worker-count-invariant.
        let chains: Vec<Vec<Arc<Aig>>> = almost_pool::map_indexed(jobs, |_, (start, suffix)| {
            let mut chain = Vec::with_capacity(suffix.len());
            let mut prev = start;
            for pass in suffix {
                let next = Arc::new(pass.apply(&prev));
                chain.push(next.clone());
                prev = next;
            }
            chain
        });
        let results: Vec<Arc<Aig>> = unique
            .iter()
            .zip(&plans)
            .zip(chains)
            .map(|((r, (_, cached)), chain)| self.trie.commit(r, *cached, chain))
            .collect();
        index_of.into_iter().map(|u| results[u].clone()).collect()
    }

    /// Synthesises and scores a batch of recipes.
    pub fn evaluate_batch(&mut self, recipes: &[Recipe]) -> Vec<Score> {
        let started = Instant::now();
        let deployed = self.synthesize_batch(recipes);
        let scores = self.objective.score_batch(&deployed);
        debug_assert_eq!(
            scores.len(),
            recipes.len(),
            "objective scores every candidate"
        );
        self.elapsed += started.elapsed();
        self.candidates += recipes.len();
        scores
    }

    /// Synthesises and scores one recipe.
    pub fn evaluate(&mut self, recipe: &Recipe) -> Score {
        self.evaluate_batch(std::slice::from_ref(recipe))
            .pop()
            .expect("one score per recipe")
    }

    /// Batched simulated annealing from `initial`.
    ///
    /// Each of the `config.iterations` temperature steps draws
    /// `config.proposals` one-position mutations of the current recipe,
    /// synthesises them as one trie/pool batch, scores them as one
    /// objective batch, then applies Metropolis acceptance sequentially
    /// over the ordered batch: the first accepted candidate becomes the
    /// new current state, later candidates only update the best-seen
    /// (and are recorded as rejected without consuming an acceptance
    /// draw). See the module docs for the determinism contract.
    pub fn anneal(&mut self, initial: Recipe, config: &SaConfig) -> EngineRun {
        let _span = telemetry::span(telemetry::Scope::Search, || {
            format!(
                "anneal {} steps x {}",
                config.iterations,
                config.proposals.max(1)
            )
        });
        // Trie counters are cumulative across the engine's lifetime;
        // snapshot them so each step event carries per-step deltas.
        let mut last_cache = self.trie.stats();
        let k = config.proposals.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut current = initial;
        let initial_score = self.evaluate(&current);
        let mut current_obj = initial_score.objective;
        let mut best = current.clone();
        let mut best_score = initial_score;
        let mut scores = Vec::with_capacity(config.iterations * k);
        let mut iterations = Vec::with_capacity(config.iterations * k);

        let alpha = if config.iterations > 1 {
            (config.final_temperature / config.initial_temperature)
                .powf(1.0 / (config.iterations as f64 - 1.0))
        } else {
            1.0
        };
        let mut temperature = config.initial_temperature;

        for step in 0..config.iterations {
            let batch: Vec<Recipe> = (0..k).map(|_| current.mutate(&mut rng)).collect();
            let batch_scores = self.evaluate_batch(&batch);
            let mut advanced = false;
            for (candidate, score) in batch.iter().zip(&batch_scores) {
                let accepted = if advanced {
                    false
                } else {
                    let delta = score.objective - current_obj;
                    delta <= 0.0 || {
                        let p = (-config.acceptance * delta / temperature.max(1e-9)).exp();
                        rng.random::<f64>() < p
                    }
                };
                if accepted {
                    current = candidate.clone();
                    current_obj = score.objective;
                    advanced = true;
                }
                if score.objective < best_score.objective {
                    best = candidate.clone();
                    best_score = *score;
                }
                iterations.push(SaIteration {
                    recipe: candidate.clone(),
                    objective: score.objective,
                    accepted,
                    best_objective: best_score.objective,
                });
                scores.push(*score);
            }
            if telemetry::tracing() {
                let cache = self.trie.stats();
                telemetry::trace(|| telemetry::EventKind::SearchStep {
                    step: step as u32,
                    candidates: k as u32,
                    current: current_obj,
                    best: best_score.objective,
                    accepted: advanced,
                    cache: telemetry::CacheDelta {
                        hits: cache.hits - last_cache.hits,
                        misses: cache.misses - last_cache.misses,
                        evictions: cache.evictions - last_cache.evictions,
                        live_nodes: cache.live_nodes as u64,
                    },
                });
                last_cache = cache;
            }
            temperature *= alpha;
        }

        EngineRun {
            best,
            best_score,
            initial_score,
            scores,
            trace: SaTrace { iterations },
        }
    }

    /// REINFORCE episodes evaluated through the engine: the reward is the
    /// negative objective, so the policy learns to emit recipes the
    /// objective considers good while episode synthesis shares the trie.
    pub fn reinforce(&mut self, config: &ReinforceConfig) -> ReinforceResult {
        reinforce(|recipe| -self.evaluate(recipe).objective, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::anneal;

    fn test_aig() -> Aig {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..8).map(|_| aig.add_input()).collect();
        let mut acc = aig.xor(ins[0], ins[1]);
        for chunk in ins[2..].chunks(2) {
            let m = if chunk.len() == 2 {
                aig.mux(chunk[0], acc, chunk[1])
            } else {
                aig.or(acc, chunk[0])
            };
            acc = aig.and(m, acc);
        }
        aig.add_output(acc);
        aig
    }

    /// A cheap pure-structure objective for engine plumbing tests.
    struct StructuralObjective;

    impl SearchObjective for StructuralObjective {
        fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
            candidates
                .iter()
                .map(|aig| Score::plain(aig.num_ands() as f64 + 0.25 * aig.depth() as f64))
                .collect()
        }
    }

    #[test]
    fn engine_k1_matches_serial_anneal_bitwise() {
        let base = test_aig();
        let config = SaConfig {
            iterations: 20,
            proposals: 1,
            seed: 9,
            ..SaConfig::default()
        };
        let initial = Recipe::resyn2();
        let (ref_best, ref_trace) = anneal(
            initial.clone(),
            |r| {
                let out = r.apply(&base);
                out.num_ands() as f64 + 0.25 * out.depth() as f64
            },
            &config,
        );
        let objective = StructuralObjective;
        let mut engine = SearchEngine::new(base, &objective);
        let run = engine.anneal(initial, &config);
        assert_eq!(run.best, ref_best);
        assert_eq!(run.trace.iterations.len(), ref_trace.iterations.len());
        for (e, r) in run.trace.iterations.iter().zip(&ref_trace.iterations) {
            assert_eq!(e.recipe, r.recipe);
            assert_eq!(e.objective.to_bits(), r.objective.to_bits());
            assert_eq!(e.accepted, r.accepted);
            assert_eq!(e.best_objective.to_bits(), r.best_objective.to_bits());
        }
        let stats = engine.stats();
        assert_eq!(stats.candidates, 21, "initial + one per step");
        assert!(stats.cache.hits > 0, "sibling proposals share prefixes");
    }

    #[test]
    fn batch_scores_align_with_trace_and_duplicates_share_handles() {
        let base = test_aig();
        let objective = StructuralObjective;
        let mut engine = SearchEngine::new(base, &objective);
        let recipe = Recipe::resyn2();
        let twice = [recipe.clone(), recipe.clone()];
        let out = engine.synthesize_batch(&twice);
        assert!(Arc::ptr_eq(&out[0], &out[1]), "duplicates share one handle");

        let config = SaConfig {
            iterations: 4,
            proposals: 3,
            seed: 2,
            ..SaConfig::default()
        };
        let run = engine.anneal(recipe, &config);
        assert_eq!(run.trace.iterations.len(), 12);
        assert_eq!(run.scores.len(), 12);
        for (it, score) in run.trace.iterations.iter().zip(&run.scores) {
            assert_eq!(it.objective.to_bits(), score.objective.to_bits());
        }
        // At most one acceptance per temperature step.
        for step in run.trace.iterations.chunks(3) {
            assert!(step.iter().filter(|i| i.accepted).count() <= 1);
        }
    }
}
