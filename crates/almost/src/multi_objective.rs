//! Joint PPA + security optimisation (the paper's stated future work:
//! "jointly optimizing PPA and security metrics").
//!
//! A weighted scalarisation of the Eq.-1 security objective with
//! normalised area and delay: `w_sec · |acc − 0.5| / 0.5 + w_area ·
//! area/area₀ + w_delay · delay/delay₀`, searched with the same annealer.
//! Setting the PPA weights to zero recovers plain ALMOST; the ablation
//! bench sweeps the weights.

use crate::engine::{EngineStats, SearchEngine, WeightedJointObjective};
use crate::proxy::ProxyModel;
use crate::recipe::Recipe;
use crate::sa::SaConfig;
use almost_locking::LockedCircuit;
use almost_netlist::{CellLibrary, PpaReport};

/// Scalarisation weights.
#[derive(Clone, Copy, Debug)]
pub struct JointWeights {
    /// Weight on the normalised security objective `|acc − 0.5| / 0.5`.
    pub security: f64,
    /// Weight on area / baseline-area.
    pub area: f64,
    /// Weight on delay / baseline-delay.
    pub delay: f64,
}

impl Default for JointWeights {
    fn default() -> Self {
        JointWeights {
            security: 1.0,
            area: 0.25,
            delay: 0.25,
        }
    }
}

/// One iteration record of the joint search.
#[derive(Clone, Copy, Debug)]
pub struct JointTracePoint {
    /// Proxy-predicted attack accuracy.
    pub accuracy: f64,
    /// Area ratio vs. the baseline.
    pub area_ratio: f64,
    /// Delay ratio vs. the baseline.
    pub delay_ratio: f64,
    /// Scalarised objective.
    pub objective: f64,
}

/// Result of the joint search.
#[derive(Clone, Debug)]
pub struct JointResult {
    /// The selected recipe.
    pub recipe: Recipe,
    /// Final accuracy / area / delay of the selected recipe.
    pub final_point: JointTracePoint,
    /// Per-iteration trace.
    pub series: Vec<JointTracePoint>,
    /// Engine counters: synthesis-cache behaviour and candidate
    /// throughput.
    pub engine: EngineStats,
}

/// Runs the joint security+PPA recipe search.
///
/// `baseline` normalises the PPA terms (use the resyn2 report).
pub fn joint_search(
    locked: &LockedCircuit,
    proxy: &ProxyModel,
    weights: JointWeights,
    baseline: &PpaReport,
    library: &CellLibrary,
    sa: &SaConfig,
) -> JointResult {
    let objective = WeightedJointObjective {
        locked,
        proxy,
        weights,
        baseline,
        library,
        analysis_seed: 13,
    };
    let mut engine = SearchEngine::new(locked.aig.clone(), &objective);
    let run = engine.anneal(Recipe::resyn2(), sa);
    let point = |s: &crate::engine::Score| JointTracePoint {
        accuracy: s.accuracy.expect("joint objective records accuracy"),
        area_ratio: s.area_ratio.expect("joint objective records ratios"),
        delay_ratio: s.delay_ratio.expect("joint objective records ratios"),
        objective: s.objective,
    };
    JointResult {
        recipe: run.best,
        final_point: point(&run.best_score),
        series: run.scores.iter().map(point).collect(),
        engine: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{train_proxy, ProxyConfig, ProxyKind};
    use almost_attacks::subgraph::SubgraphConfig;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};
    use almost_netlist::{analyze, map_aig, MapConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn joint_search_runs_and_reports() {
        let mut rng = StdRng::seed_from_u64(8);
        let locked = Rll::new(12)
            .lock(&IscasBenchmark::C432.build(), &mut rng)
            .expect("lockable");
        let proxy = train_proxy(
            &locked,
            ProxyKind::Resyn2,
            &ProxyConfig {
                initial_samples: 48,
                epochs: 8,
                period: 8,
                hidden: 8,
                subgraph: SubgraphConfig {
                    hops: 2,
                    max_nodes: 24,
                },
                ..ProxyConfig::default()
            },
        );
        let lib = CellLibrary::nangate45();
        let base_aig = Recipe::resyn2().apply(&locked.aig);
        let base_nl = map_aig(&base_aig, &lib, &MapConfig::no_opt());
        let baseline = analyze(&base_nl, &base_aig, &lib, 4, 1);
        let sa = SaConfig {
            iterations: 4,
            seed: 2,
            ..SaConfig::default()
        };
        let result = joint_search(
            &locked,
            &proxy,
            JointWeights::default(),
            &baseline,
            &lib,
            &sa,
        );
        assert_eq!(result.series.len(), 4);
        assert!(result.final_point.area_ratio > 0.0);
        assert!(result.final_point.objective.is_finite());
        // Zero PPA weights must recover the pure security objective.
        let pure = joint_search(
            &locked,
            &proxy,
            JointWeights {
                security: 1.0,
                area: 0.0,
                delay: 0.0,
            },
            &baseline,
            &lib,
            &sa,
        );
        for p in &pure.series {
            assert!((p.objective - (p.accuracy - 0.5).abs() / 0.5).abs() < 1e-9);
        }
    }
}
