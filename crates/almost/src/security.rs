//! Security-aware synthesis: the SA search of Eq. 1.
//!
//! Minimises `|Acc(M, G(AIG, S)) − 0.5|` over recipes `S`, where the
//! accuracy evaluator `M` is a (proxy) attack model. The per-iteration
//! accuracy series is exactly what the paper's Fig. 4 plots.

use crate::engine::{EngineStats, ProxyAccuracyObjective, SearchEngine};
use crate::proxy::ProxyModel;
use crate::recipe::Recipe;
use crate::sa::{SaConfig, SaTrace};
use almost_locking::LockedCircuit;

/// Result of a security-aware recipe search.
#[derive(Clone, Debug)]
pub struct SecurityResult {
    /// The selected recipe (best `|acc − 0.5|` seen; the paper keeps the
    /// final recipe when 50% was not reached in budget — the best-seen is
    /// never worse than that).
    pub recipe: Recipe,
    /// Predicted attack accuracy of the selected recipe.
    pub accuracy: f64,
    /// Accuracy of every SA candidate, in proposal order (Fig. 4 series;
    /// `iterations × proposals` entries, the initial recipe excluded).
    pub accuracy_series: Vec<f64>,
    /// The raw SA trace (objectives are `|acc − 0.5|`).
    pub trace: SaTrace,
    /// Engine counters: synthesis-cache behaviour and candidate
    /// throughput.
    pub engine: EngineStats,
}

/// Runs the Eq. 1 search for `locked` using `proxy` as the accuracy
/// evaluator.
///
/// Runs on the batched [`SearchEngine`]: sibling proposals share
/// synthesis intermediates through the recipe trie, and each step's
/// proposal batch is scored through one fused GIN forward pass
/// ([`ProxyModel::predict_accuracy_batch`]). `config.proposals` sets the
/// batch width; at 1 the search reproduces the serial annealer trace
/// bit-for-bit.
pub fn generate_secure_recipe(
    locked: &LockedCircuit,
    proxy: &ProxyModel,
    config: &SaConfig,
) -> SecurityResult {
    let objective = ProxyAccuracyObjective { locked, proxy };
    let mut engine = SearchEngine::new(locked.aig.clone(), &objective);
    let run = engine.anneal(Recipe::resyn2(), config);
    let accuracy_series = run
        .scores
        .iter()
        .map(|s| s.accuracy.expect("proxy objective records accuracy"))
        .collect();
    SecurityResult {
        recipe: run.best,
        accuracy: run
            .best_score
            .accuracy
            .expect("proxy objective records accuracy"),
        accuracy_series,
        trace: run.trace,
        engine: engine.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{train_proxy, ProxyConfig, ProxyKind};
    use almost_attacks::subgraph::SubgraphConfig;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn search_produces_a_recipe_and_series() {
        let mut rng = StdRng::seed_from_u64(3);
        let locked = Rll::new(16)
            .lock(&IscasBenchmark::C432.build(), &mut rng)
            .expect("lockable");
        let proxy_cfg = ProxyConfig {
            initial_samples: 48,
            epochs: 10,
            period: 10,
            hidden: 8,
            subgraph: SubgraphConfig {
                hops: 2,
                max_nodes: 24,
            },
            ..ProxyConfig::default()
        };
        let proxy = train_proxy(&locked, ProxyKind::Resyn2, &proxy_cfg);
        let sa = SaConfig {
            iterations: 6,
            seed: 4,
            ..SaConfig::default()
        };
        let result = generate_secure_recipe(&locked, &proxy, &sa);
        assert_eq!(result.recipe.len(), 10);
        assert_eq!(result.accuracy_series.len(), 6);
        assert!((0.0..=1.0).contains(&result.accuracy));
        assert_eq!(result.engine.candidates, 7, "initial + one per step");
        assert!(result.engine.cache.hits > 0, "proposals share prefixes");
        // The chosen recipe's |acc-0.5| must be <= the initial recipe's.
        let initial_acc = {
            let deployed = Recipe::resyn2().apply(&locked.aig);
            proxy.predict_accuracy(&locked, &deployed)
        };
        assert!(
            (result.accuracy - 0.5).abs() <= (initial_acc - 0.5).abs() + 1e-9,
            "search must not be worse than the baseline: {} vs {}",
            result.accuracy,
            initial_acc
        );
    }
}
