//! Synthesis recipes: fixed-length pass sequences over the paper's
//! seven-transformation alphabet, plus a prefix-sharing synthesis cache
//! organised as a trie over pass paths.

use almost_aig::{Aig, Pass, Script};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use std::sync::Arc;

/// The paper's recipe length (L = 10).
pub const RECIPE_LENGTH: usize = 10;

/// A fixed-length synthesis recipe.
///
/// # Example
///
/// ```
/// use almost_core::recipe::Recipe;
/// let r = Recipe::resyn2();
/// assert_eq!(r.len(), 10);
/// assert_eq!(r.to_string(), "bwfbwWbFWb");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Recipe {
    passes: Vec<Pass>,
}

impl Recipe {
    /// A recipe from explicit passes.
    pub fn new(passes: Vec<Pass>) -> Self {
        Recipe { passes }
    }

    /// The `resyn2` baseline (exactly [`RECIPE_LENGTH`] steps).
    pub fn resyn2() -> Self {
        Recipe {
            passes: Script::resyn2().0,
        }
    }

    /// A uniformly random recipe of `len` steps.
    pub fn random(len: usize, rng: &mut StdRng) -> Self {
        Recipe {
            passes: (0..len)
                .map(|_| Pass::ALL[rng.random_range(0..Pass::ALL.len())])
                .collect(),
        }
    }

    /// The SA neighbourhood move: replace one random position with a
    /// different random pass.
    pub fn mutate(&self, rng: &mut StdRng) -> Recipe {
        let mut passes = self.passes.clone();
        if passes.is_empty() {
            return Recipe { passes };
        }
        let pos = rng.random_range(0..passes.len());
        let current = passes[pos];
        loop {
            let candidate = Pass::ALL[rng.random_range(0..Pass::ALL.len())];
            if candidate != current {
                passes[pos] = candidate;
                break;
            }
        }
        Recipe { passes }
    }

    /// Applies the recipe to an AIG.
    pub fn apply(&self, aig: &Aig) -> Aig {
        self.as_script().apply(aig)
    }

    /// The underlying pass sequence.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Recipe length.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True for the empty recipe.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// View as a [`Script`].
    pub fn as_script(&self) -> Script {
        Script(self.passes.clone())
    }

    /// Parses a mnemonic string (e.g. `bwfbwWbFWb`).
    ///
    /// # Errors
    ///
    /// Returns an error on unknown mnemonics.
    pub fn from_mnemonics(s: &str) -> Result<Self, almost_aig::passes::ParsePassError> {
        Script::from_mnemonics(s).map(|sc| Recipe { passes: sc.0 })
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Recipe) -> usize {
        self.passes
            .iter()
            .zip(&other.passes)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_script().to_mnemonics())
    }
}

impl fmt::Debug for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recipe({self})")
    }
}

/// Default node budget of a [`RecipeTrie`] (cached intermediates, root
/// excluded). A paper-scale SA search at `proposals = 1` (100 steps,
/// length-10 recipes) touches at most ~1k nodes, so the default never
/// evicts there; wide proposal batches (`ALMOST_PROPOSALS` ≫ 1) at
/// paper scale can exceed it, in which case the stalest leaves are
/// pruned — correctness is unaffected, recently-shared prefixes stay
/// cached. Tiny budgets are for memory-capped callers (and the
/// eviction tests).
pub const TRIE_NODE_BUDGET: usize = 1024;

/// Cumulative [`RecipeTrie`] counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrieStats {
    /// Synthesis steps served from a cached intermediate.
    pub hits: u64,
    /// Synthesis steps that had to be computed (and were inserted).
    pub misses: u64,
    /// Cached intermediates dropped by the budget enforcement.
    pub evictions: u64,
    /// Currently live cached intermediates (root excluded).
    pub live_nodes: usize,
}

const NO_CHILD: u32 = u32::MAX;
const ROOT: u32 = 0;

struct TrieNode {
    /// The intermediate network at this pass path (`None` on evicted,
    /// free-listed slots).
    aig: Option<Arc<Aig>>,
    /// Child per pass, indexed by the [`Pass::ALL`] position.
    children: [u32; Pass::ALL.len()],
    parent: u32,
    /// Which child slot of `parent` points here.
    slot: u8,
    /// Monotone touch tick. Every access walks root→leaf, so a node is
    /// touched whenever any of its descendants is — `last_use` is always
    /// ≥ the maximum over the subtree, which is what makes stalest-node
    /// eviction a whole-subtree LRU.
    last_use: u64,
}

/// Applies recipes to a fixed base AIG through a trie of cached
/// intermediates keyed by pass path.
///
/// Unlike a linear prefix chain, sibling recipes (`bwf…` vs `bwS…`) keep
/// *both* branches cached, so a simulated-annealing search that bounces
/// between neighbouring mutations never recomputes the shared prefix —
/// and never recomputes the branch it bounced away from. Intermediates
/// are held behind [`Arc`], so a cache hit hands back a refcount bump,
/// not a structural clone.
///
/// The node budget bounds memory: past it, stale subtrees are pruned
/// leaf-by-leaf (oldest `last_use` among live leaves, smallest index on
/// ties — deterministic; the touch-path invariant makes the stalest
/// leaf the bottom of the stalest subtree) until the trie fits. Evicted
/// paths are recomputed on demand; results are always identical to
/// [`Recipe::apply`] because every pass is a pure function.
pub struct RecipeTrie {
    nodes: Vec<TrieNode>,
    free: Vec<u32>,
    budget: usize,
    live: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

fn pass_slot(pass: Pass) -> usize {
    // `Pass` is fieldless and `Pass::ALL` lists the variants in
    // declaration order, so the cast is the alphabet index.
    pass as usize
}

impl RecipeTrie {
    /// A trie over the given base circuit with the default node budget.
    pub fn new(base: Aig) -> Self {
        Self::with_budget(base, TRIE_NODE_BUDGET)
    }

    /// A trie with an explicit node budget (0 disables caching).
    pub fn with_budget(base: Aig, budget: usize) -> Self {
        RecipeTrie {
            nodes: vec![TrieNode {
                aig: Some(Arc::new(base)),
                children: [NO_CHILD; Pass::ALL.len()],
                parent: ROOT,
                slot: 0,
                last_use: 0,
            }],
            free: Vec::new(),
            budget,
            live: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The base circuit.
    pub fn base(&self) -> &Aig {
        self.nodes[ROOT as usize]
            .aig
            .as_deref()
            .expect("root lives")
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TrieStats {
        TrieStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            live_nodes: self.live,
        }
    }

    fn node_aig(&self, idx: u32) -> &Arc<Aig> {
        self.nodes[idx as usize].aig.as_ref().expect("live node")
    }

    /// The deepest cached intermediate along `recipe`'s pass path:
    /// `(intermediate, passes covered)`. Read-only — no touch, no stats —
    /// so the engine can plan a batch before fanning the suffix
    /// synthesis out.
    pub fn cached_prefix(&self, recipe: &Recipe) -> (Arc<Aig>, usize) {
        let mut node = ROOT;
        let mut depth = 0;
        for &pass in recipe.passes() {
            let child = self.nodes[node as usize].children[pass_slot(pass)];
            if child == NO_CHILD {
                break;
            }
            node = child;
            depth += 1;
        }
        (self.node_aig(node).clone(), depth)
    }

    /// Applies `recipe`, computing uncached steps serially.
    pub fn apply(&mut self, recipe: &Recipe) -> Arc<Aig> {
        let (start, cached) = self.cached_prefix(recipe);
        let mut suffix = Vec::with_capacity(recipe.len() - cached);
        let mut prev = start;
        for &pass in &recipe.passes()[cached..] {
            let next = Arc::new(pass.apply(&prev));
            suffix.push(next.clone());
            prev = next;
        }
        self.commit(recipe, cached, suffix)
    }

    /// Installs a precomputed suffix chain for `recipe` and returns the
    /// final network. `suffix[i]` must be pass `cached + i` applied to its
    /// predecessor (as produced from a [`RecipeTrie::cached_prefix`]
    /// plan). Steps another commit cached in the meantime are deduplicated
    /// against the trie (pass application is deterministic, so the stored
    /// and provided networks are identical); steps the plan assumed cached
    /// but eviction removed are recomputed on the spot.
    pub fn commit(&mut self, recipe: &Recipe, cached: usize, suffix: Vec<Arc<Aig>>) -> Arc<Aig> {
        self.tick += 1;
        let tick = self.tick;
        let mut node = ROOT;
        for (depth, &pass) in recipe.passes().iter().enumerate() {
            let slot = pass_slot(pass);
            let child = self.nodes[node as usize].children[slot];
            let next = if child != NO_CHILD {
                self.hits += 1;
                child
            } else {
                self.misses += 1;
                let aig = match depth.checked_sub(cached).and_then(|i| suffix.get(i)) {
                    Some(aig) => aig.clone(),
                    // The planned prefix was evicted under us (same-batch
                    // commits can trigger the budget): recompute.
                    None => Arc::new(pass.apply(self.node_aig(node))),
                };
                self.insert(node, slot, aig)
            };
            self.nodes[next as usize].last_use = tick;
            node = next;
        }
        let result = self.node_aig(node).clone();
        self.enforce_budget();
        result
    }

    fn insert(&mut self, parent: u32, slot: usize, aig: Arc<Aig>) -> u32 {
        let node = TrieNode {
            aig: Some(aig),
            children: [NO_CHILD; Pass::ALL.len()],
            parent,
            slot: slot as u8,
            last_use: 0,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        self.nodes[parent as usize].children[slot] = idx;
        self.live += 1;
        idx
    }

    fn enforce_budget(&mut self) {
        while self.live > self.budget {
            // Stalest live *leaf* (no live children), smallest index on
            // ties — deterministic. Some leaf always attains the global
            // minimum `last_use` (descend from any minimal node: the
            // touch-path invariant makes its whole subtree equally
            // stale), so pruning leaf-by-leaf is LRU-of-subtree from the
            // bottom up. Pruning leaves rather than stale subtree roots
            // matters when one recipe path alone exceeds the budget: the
            // trie retains the freshest `budget`-long prefix instead of
            // dropping the entire just-committed path (all its nodes
            // share one tick, and an ancestor tie-break would evict
            // everything below it too).
            let victim = (1..self.nodes.len() as u32)
                .filter(|&i| {
                    let node = &self.nodes[i as usize];
                    node.aig.is_some() && node.children.iter().all(|&c| c == NO_CHILD)
                })
                .min_by_key(|&i| (self.nodes[i as usize].last_use, i));
            match victim {
                Some(v) => self.evict_leaf(v),
                None => break,
            }
        }
    }

    fn evict_leaf(&mut self, idx: u32) {
        let parent = self.nodes[idx as usize].parent;
        let slot = self.nodes[idx as usize].slot as usize;
        self.nodes[parent as usize].children[slot] = NO_CHILD;
        let node = &mut self.nodes[idx as usize];
        debug_assert!(node.children.iter().all(|&c| c == NO_CHILD));
        node.aig = None;
        self.free.push(idx);
        self.live -= 1;
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_aig::sim::probably_equivalent;
    use rand::SeedableRng;

    fn test_aig() -> Aig {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let x = aig.xor(ins[0], ins[1]);
        let y = aig.and(x, ins[2]);
        let z = aig.mux(ins[3], y, ins[4]);
        let w = aig.or(z, ins[5]);
        aig.add_output(w);
        aig.add_output(y);
        aig
    }

    #[test]
    fn random_recipes_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = Recipe::random(RECIPE_LENGTH, &mut rng);
        assert_eq!(r.len(), RECIPE_LENGTH);
    }

    #[test]
    fn mutation_changes_exactly_one_position() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Recipe::resyn2();
        for _ in 0..20 {
            let m = r.mutate(&mut rng);
            let diffs = r
                .passes()
                .iter()
                .zip(m.passes())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn trie_matches_direct_application() {
        let base = test_aig();
        let mut trie = RecipeTrie::new(base.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let mut recipe = Recipe::random(6, &mut rng);
        for _ in 0..5 {
            let cached = trie.apply(&recipe);
            let direct = recipe.apply(&base);
            assert_eq!(cached.num_ands(), direct.num_ands());
            assert!(probably_equivalent(&cached, &direct, 8, 9));
            recipe = recipe.mutate(&mut rng);
        }
        let stats = trie.stats();
        assert!(stats.hits > 0, "mutation chains must reuse prefixes");
        assert!(stats.misses > 0);
        assert_eq!(stats.evictions, 0, "default budget never evicts here");
    }

    #[test]
    fn trie_keeps_sibling_branches_cached() {
        // A linear prefix chain recomputes when the search bounces
        // between two sibling recipes; the trie must not.
        let base = test_aig();
        let mut trie = RecipeTrie::new(base);
        let a = Recipe::from_mnemonics("bwf").expect("parses");
        let b = Recipe::from_mnemonics("bwS").expect("parses");
        trie.apply(&a);
        trie.apply(&b);
        let misses_after_first_pair = trie.stats().misses;
        let ra = trie.apply(&a);
        let rb = trie.apply(&b);
        assert_eq!(
            trie.stats().misses,
            misses_after_first_pair,
            "revisiting siblings must be all hits"
        );
        // Revisits hand back the same shared intermediate, not a clone.
        assert!(Arc::ptr_eq(&ra, &trie.apply(&a)));
        assert!(Arc::ptr_eq(&rb, &trie.apply(&b)));
    }

    #[test]
    fn trie_evicts_to_budget_and_stays_correct() {
        let base = test_aig();
        let mut trie = RecipeTrie::with_budget(base.clone(), 4);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..6 {
            let recipe = Recipe::random(5, &mut rng);
            let cached = trie.apply(&recipe);
            let direct = recipe.apply(&base);
            assert_eq!(cached.num_ands(), direct.num_ands());
            assert!(probably_equivalent(&cached, &direct, 8, 9));
            assert!(trie.stats().live_nodes <= 4, "budget must hold");
        }
        assert!(trie.stats().evictions > 0, "tiny budget must evict");
    }

    #[test]
    fn trie_zero_budget_degenerates_to_direct_application() {
        let base = test_aig();
        let mut trie = RecipeTrie::with_budget(base.clone(), 0);
        let recipe = Recipe::from_mnemonics("bw").expect("parses");
        for _ in 0..2 {
            let out = trie.apply(&recipe);
            assert_eq!(out.num_ands(), recipe.apply(&base).num_ands());
        }
        let stats = trie.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.live_nodes, 0);
    }

    #[test]
    fn mnemonic_roundtrip() {
        let r = Recipe::resyn2();
        let s = r.to_string();
        assert_eq!(Recipe::from_mnemonics(&s).expect("parses"), r);
    }

    #[test]
    fn common_prefix() {
        let a = Recipe::from_mnemonics("bwfbw").expect("parses");
        let b = Recipe::from_mnemonics("bwfSS").expect("parses");
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), 5);
    }
}
