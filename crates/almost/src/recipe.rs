//! Synthesis recipes: fixed-length pass sequences over the paper's
//! seven-transformation alphabet, plus a prefix-reusing synthesis cache.

use almost_aig::{Aig, Pass, Script};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// The paper's recipe length (L = 10).
pub const RECIPE_LENGTH: usize = 10;

/// A fixed-length synthesis recipe.
///
/// # Example
///
/// ```
/// use almost_core::recipe::Recipe;
/// let r = Recipe::resyn2();
/// assert_eq!(r.len(), 10);
/// assert_eq!(r.to_string(), "bwfbwWbFWb");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Recipe {
    passes: Vec<Pass>,
}

impl Recipe {
    /// A recipe from explicit passes.
    pub fn new(passes: Vec<Pass>) -> Self {
        Recipe { passes }
    }

    /// The `resyn2` baseline (exactly [`RECIPE_LENGTH`] steps).
    pub fn resyn2() -> Self {
        Recipe {
            passes: Script::resyn2().0,
        }
    }

    /// A uniformly random recipe of `len` steps.
    pub fn random(len: usize, rng: &mut StdRng) -> Self {
        Recipe {
            passes: (0..len)
                .map(|_| Pass::ALL[rng.random_range(0..Pass::ALL.len())])
                .collect(),
        }
    }

    /// The SA neighbourhood move: replace one random position with a
    /// different random pass.
    pub fn mutate(&self, rng: &mut StdRng) -> Recipe {
        let mut passes = self.passes.clone();
        if passes.is_empty() {
            return Recipe { passes };
        }
        let pos = rng.random_range(0..passes.len());
        let current = passes[pos];
        loop {
            let candidate = Pass::ALL[rng.random_range(0..Pass::ALL.len())];
            if candidate != current {
                passes[pos] = candidate;
                break;
            }
        }
        Recipe { passes }
    }

    /// Applies the recipe to an AIG.
    pub fn apply(&self, aig: &Aig) -> Aig {
        self.as_script().apply(aig)
    }

    /// The underlying pass sequence.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Recipe length.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True for the empty recipe.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// View as a [`Script`].
    pub fn as_script(&self) -> Script {
        Script(self.passes.clone())
    }

    /// Parses a mnemonic string (e.g. `bwfbwWbFWb`).
    ///
    /// # Errors
    ///
    /// Returns an error on unknown mnemonics.
    pub fn from_mnemonics(s: &str) -> Result<Self, almost_aig::passes::ParsePassError> {
        Script::from_mnemonics(s).map(|sc| Recipe { passes: sc.0 })
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Recipe) -> usize {
        self.passes
            .iter()
            .zip(&other.passes)
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_script().to_mnemonics())
    }
}

impl fmt::Debug for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recipe({self})")
    }
}

/// Applies recipes to a fixed base AIG, reusing the longest common prefix
/// of consecutive requests.
///
/// Simulated annealing mutates one position per proposal, so on average
/// half the recipe is reused — the same trick that makes the paper's
/// 100-iteration searches affordable.
pub struct SynthesisCache {
    base: Aig,
    steps: Vec<(Pass, Aig)>,
    hits: usize,
    misses: usize,
}

impl SynthesisCache {
    /// A cache over the given base circuit.
    pub fn new(base: Aig) -> Self {
        SynthesisCache {
            base,
            steps: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The base circuit.
    pub fn base(&self) -> &Aig {
        &self.base
    }

    /// Applies `recipe`, reusing cached prefix results.
    pub fn apply(&mut self, recipe: &Recipe) -> Aig {
        // Find how much of the cached pass chain matches.
        let mut keep = 0;
        while keep < self.steps.len().min(recipe.len())
            && self.steps[keep].0 == recipe.passes()[keep]
        {
            keep += 1;
        }
        self.hits += keep;
        self.misses += recipe.len() - keep;
        self.steps.truncate(keep);
        for &pass in &recipe.passes()[keep..] {
            let prev = self.steps.last().map(|(_, aig)| aig).unwrap_or(&self.base);
            let next = pass.apply(prev);
            self.steps.push((pass, next));
        }
        self.steps
            .last()
            .map(|(_, aig)| aig.clone())
            .unwrap_or_else(|| self.base.clone())
    }

    /// (cached steps reused, steps recomputed) so far.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_aig::sim::probably_equivalent;
    use rand::SeedableRng;

    fn test_aig() -> Aig {
        let mut aig = Aig::new();
        let ins: Vec<_> = (0..6).map(|_| aig.add_input()).collect();
        let x = aig.xor(ins[0], ins[1]);
        let y = aig.and(x, ins[2]);
        let z = aig.mux(ins[3], y, ins[4]);
        let w = aig.or(z, ins[5]);
        aig.add_output(w);
        aig.add_output(y);
        aig
    }

    #[test]
    fn random_recipes_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = Recipe::random(RECIPE_LENGTH, &mut rng);
        assert_eq!(r.len(), RECIPE_LENGTH);
    }

    #[test]
    fn mutation_changes_exactly_one_position() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = Recipe::resyn2();
        for _ in 0..20 {
            let m = r.mutate(&mut rng);
            let diffs = r
                .passes()
                .iter()
                .zip(m.passes())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn cache_matches_direct_application() {
        let base = test_aig();
        let mut cache = SynthesisCache::new(base.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let mut recipe = Recipe::random(6, &mut rng);
        for _ in 0..5 {
            let cached = cache.apply(&recipe);
            let direct = recipe.apply(&base);
            assert_eq!(cached.num_ands(), direct.num_ands());
            assert!(probably_equivalent(&cached, &direct, 8, 9));
            recipe = recipe.mutate(&mut rng);
        }
        let (hits, misses) = cache.stats();
        assert!(hits > 0, "mutation chains must reuse prefixes");
        assert!(misses > 0);
    }

    #[test]
    fn mnemonic_roundtrip() {
        let r = Recipe::resyn2();
        let s = r.to_string();
        assert_eq!(Recipe::from_mnemonics(&s).expect("parses"), r);
    }

    #[test]
    fn common_prefix() {
        let a = Recipe::from_mnemonics("bwfbw").expect("parses");
        let b = Recipe::from_mnemonics("bwfSS").expect("parses");
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), 5);
    }
}
