//! Slice utilities.

use crate::RngExt;

/// Random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    ///
    /// # Example
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::seq::SliceRandom;
    /// use rand::SeedableRng;
    ///
    /// let mut v: Vec<u32> = (0..32).collect();
    /// v.shuffle(&mut StdRng::seed_from_u64(9));
    /// let mut sorted = v.clone();
    /// sorted.sort_unstable();
    /// assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    /// ```
    fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "identity is astronomically unlikely"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut empty: [u32; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [7u32];
        one.shuffle(&mut rng);
        assert_eq!(one, [7]);
    }
}
