//! Concrete generators.

use crate::{RngExt, SeedableRng};

/// The workspace's standard generator: xoshiro256++, seeded through
/// SplitMix64 so that nearby `u64` seeds yield decorrelated streams.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::{RngExt, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_ne!(rng.next_u64(), rng.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        StdRng { state }
    }
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_well_distributed() {
        // Every byte position should take many distinct values over a
        // short stream — a smoke test against degenerate seeding.
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0usize; 64];
        for _ in 0..4096 {
            let v = rng.next_u64();
            for (b, count) in counts.iter_mut().enumerate() {
                *count += (v >> b & 1) as usize;
            }
        }
        for (b, &ones) in counts.iter().enumerate() {
            assert!(
                (1500..2600).contains(&ones),
                "bit {b} is biased: {ones}/4096 ones"
            );
        }
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
