//! A workspace-local random-number shim.
//!
//! The workspace runs in hermetic environments with no access to crates.io,
//! so this crate provides the small slice of the `rand` API the other crates
//! use — [`RngExt`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] — backed by a deterministic xoshiro256++ generator.
//! Streams are reproducible across platforms and releases: every experiment
//! seed in the workspace produces the same circuits, keys and training runs.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: u64 = rng.random();
//! let y: u64 = StdRng::seed_from_u64(7).random();
//! assert_eq!(x, y);
//! let p = rng.random_range(0..10usize);
//! assert!(p < 10);
//! ```

pub mod rngs;
pub mod seq;

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn generate<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` is the caller's
    /// responsibility (checked by [`RngExt::random_range`]).
    fn sample_below<R: RngExt + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngExt + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Debiased multiply-shift (Lemire); span is non-zero.
                let mut m = (rng.next_u64() as u128) * (span as u128);
                if (m as u64) < span {
                    let t = span.wrapping_neg() % span;
                    while (m as u64) < t {
                        m = (rng.next_u64() as u128) * (span as u128);
                    }
                }
                low.wrapping_add((m >> 64) as u64 as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64, isize);

/// A half-open or inclusive integer range accepted by
/// [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + WrappingStep> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + WrappingStep> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        // `end + 1` may wrap only when the range covers the whole domain,
        // in which case a raw draw is uniform anyway.
        let above = end.wrapping_next();
        if above <= start {
            return T::sample_below(start, end, rng); // degenerate full-domain
        }
        T::sample_below(start, above, rng)
    }
}

/// Successor with wrap-around, for inclusive-range sampling.
pub trait WrappingStep: Copy {
    /// `self + 1`, wrapping at the domain boundary.
    fn wrapping_next(self) -> Self;
}

macro_rules! impl_wrapping_step {
    ($($t:ty),*) => {$(
        impl WrappingStep for $t {
            fn wrapping_next(self) -> Self {
                self.wrapping_add(1)
            }
        }
    )*};
}

impl_wrapping_step!(u8, u16, u32, u64, usize, i32, i64, isize);

/// The random-value interface: the `rand`-crate methods this workspace
/// uses, provided on top of a single `next_u64` primitive.
pub trait RngExt {
    /// The raw 64-bit generator output.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.random::<f64>() < p
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }
}

impl<R: RngExt + ?Sized> RngExt for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4u32);
            assert!(w <= 4);
            let s = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_draws_cover_small_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
