//! The SCOPE attack: synthesis-based constant-propagation key recovery
//! (Alaql et al., IEEE TVLSI 2021).
//!
//! SCOPE is *unsupervised*: for each key input it synthesises the netlist
//! twice — once with the bit hard-wired to 0, once to 1 — and compares
//! synthesis-report features (gate count, depth, literal counts). The
//! hypothesis whose constant "fits" the surrounding logic lets the
//! synthesiser simplify more; asymmetry in the reports reveals the bit.
//! Bits with symmetric reports stay unresolved (and count as incorrect in
//! the paper's accuracy metric, which is why SCOPE frequently scores below
//! 50%).

use crate::report::{AttackOutcome, AttackTarget, OracleLessAttack};
use almost_aig::{Aig, CompiledAig, Pass, Script};
use almost_locking::apply_key;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SCOPE configuration.
#[derive(Clone, Debug)]
pub struct ScopeConfig {
    /// The synthesis script used for the per-hypothesis re-synthesis runs.
    pub script: Script,
    /// If set, only this many key bits (evenly sampled) are attacked;
    /// accuracy is reported over the sampled bits. SCOPE synthesises twice
    /// per bit, so sampling keeps large-key runs affordable.
    pub max_bits: Option<usize>,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            // A light script keeps the 2-per-bit synthesis affordable.
            script: Script(vec![Pass::Balance, Pass::Rewrite, Pass::Refactor]),
            max_bits: None,
        }
    }
}

/// Evenly samples `take` bit offsets out of `total` (all of them when
/// `take >= total`).
pub(crate) fn sample_bits(total: usize, take: Option<usize>) -> Vec<usize> {
    match take {
        Some(k) if k < total && k > 0 => (0..k).map(|i| i * total / k).collect(),
        _ => (0..total).collect(),
    }
}

/// The SCOPE attack.
#[derive(Clone, Debug, Default)]
pub struct Scope {
    /// Attack configuration.
    pub config: ScopeConfig,
}

/// Synthesis-report features SCOPE compares between hypotheses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReportFeatures {
    /// AND-node count after synthesis.
    pub gates: f64,
    /// Logic depth after synthesis.
    pub depth: f64,
    /// Total fanin edge count (a literal-count proxy).
    pub literals: f64,
}

impl ReportFeatures {
    /// Extracts the features from a synthesised AIG.
    pub fn of(aig: &Aig) -> Self {
        ReportFeatures {
            gates: aig.num_ands() as f64,
            depth: aig.depth() as f64,
            literals: (2 * aig.num_ands()) as f64,
        }
    }

    /// A scalar complexity score (lower = more simplification achieved).
    pub fn complexity(&self) -> f64 {
        self.gates + 0.5 * self.depth + 0.1 * self.literals
    }
}

impl Scope {
    /// A SCOPE attacker with the given configuration.
    pub fn new(config: ScopeConfig) -> Self {
        Scope { config }
    }

    /// Decides one key bit from the two hypothesis syntheses; `None` when
    /// the reports are symmetric (unresolved).
    pub fn decide_bit(&self, deployed: &Aig, key_start: usize, bit_offset: usize) -> Option<bool> {
        let spec0 = specialise_single(deployed, key_start + bit_offset, false);
        let spec1 = specialise_single(deployed, key_start + bit_offset, true);
        // Dead-bit prefilter: when the two specialisations are (almost
        // surely) the same function, the bit cannot be decided — skip both
        // synthesis runs. A functionally dead bit previously produced
        // identical reports and tied to None; this short-circuits that.
        if compiled_probably_equal(&spec0, &spec1, DEAD_BIT_WORDS, DEAD_BIT_SEED) {
            return None;
        }
        let mut complexities = [0.0f64; 2];
        for (i, specialised) in [spec0, spec1].iter().enumerate() {
            let synthesised = self.config.script.apply(specialised);
            complexities[i] = ReportFeatures::of(&synthesised).complexity();
        }
        // The *correct* constant makes the key gate collapse into a plain
        // wire; the wrong constant leaves an inverter that can block
        // sharing. More simplification (lower complexity) => that constant
        // is the bit.
        if complexities[0] < complexities[1] {
            Some(false)
        } else if complexities[1] < complexities[0] {
            Some(true)
        } else {
            None
        }
    }
}

/// Hard-wires a single input (by absolute input position) to a constant,
/// keeping every other input.
fn specialise_single(aig: &Aig, input_pos: usize, value: bool) -> Aig {
    // apply_key with a 1-bit "key" at the given position.
    apply_key(aig, input_pos, &[value])
}

/// Words of random stimulus for the dead-bit prefilter (1024 patterns).
const DEAD_BIT_WORDS: usize = 16;
/// Stimulus seed for the dead-bit prefilter.
const DEAD_BIT_SEED: u64 = 0x5C09E;

/// One compiled word-level sweep over shared random stimulus to check
/// whether two same-interface netlists (probably) compute the same
/// function. Falls back to the interpreted equivalence check when either
/// netlist refuses to compile.
fn compiled_probably_equal(a: &Aig, b: &Aig, num_words: usize, seed: u64) -> bool {
    debug_assert_eq!(a.num_inputs(), b.num_inputs());
    debug_assert_eq!(a.num_outputs(), b.num_outputs());
    let (Ok(code_a), Ok(code_b)) = (CompiledAig::compile(a), CompiledAig::compile(b)) else {
        return almost_aig::sim::probably_equivalent(a, b, num_words, seed);
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let words: Vec<Vec<u64>> = (0..a.num_inputs())
        .map(|_| (0..num_words).map(|_| rng.random()).collect())
        .collect();
    code_a.eval_words(&words, num_words) == code_b.eval_words(&words, num_words)
}

impl OracleLessAttack for Scope {
    fn name(&self) -> &'static str {
        "SCOPE"
    }

    fn attack(&self, target: &AttackTarget) -> AttackOutcome {
        let key_start = target.locked.key_input_start;
        let key_size = target.locked.key_size();
        let bits = sample_bits(key_size, self.config.max_bits);
        let predicted: Vec<Option<bool>> = bits
            .iter()
            .map(|&k| self.decide_bit(&target.deployed, key_start, k))
            .collect();
        let truth: Vec<bool> = bits.iter().map(|&k| target.locked.key.bits()[k]).collect();
        AttackOutcome::score("SCOPE", predicted, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn report_features_track_size() {
        let small = IscasBenchmark::C432.build();
        let big = IscasBenchmark::C1355.build();
        assert!(ReportFeatures::of(&big).complexity() > ReportFeatures::of(&small).complexity());
    }

    #[test]
    fn scope_produces_a_full_prediction_vector() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(8).lock(&base, &mut rng).expect("lockable");
        let target = AttackTarget::new(locked, Script::new());
        let outcome = Scope::default().attack(&target);
        assert_eq!(outcome.predicted.len(), 8);
        assert!((0.0..=1.0).contains(&outcome.accuracy));
    }

    #[test]
    fn dead_key_bit_stays_unresolved_without_synthesis() {
        // An input that feeds nothing: both specialisations are the same
        // function, so the compiled prefilter must return None.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let _dead = aig.add_input();
        let f = aig.and(a, b);
        aig.add_output(f);
        let scope = Scope::default();
        assert_eq!(scope.decide_bit(&aig, 2, 0), None);
        assert!(compiled_probably_equal(
            &specialise_single(&aig, 2, false),
            &specialise_single(&aig, 2, true),
            4,
            1
        ));
    }

    #[test]
    fn live_bits_are_not_prefiltered_away() {
        // XOR key gate: the two specialisations differ on every pattern.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let k = aig.add_input();
        let f = aig.xor(a, k);
        aig.add_output(f);
        assert!(!compiled_probably_equal(
            &specialise_single(&aig, 1, false),
            &specialise_single(&aig, 1, true),
            4,
            1
        ));
    }

    #[test]
    fn specialise_single_keeps_other_inputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_output(f);
        let spec = specialise_single(&aig, 1, true);
        assert_eq!(spec.num_inputs(), 1);
        assert_eq!(spec.eval(&[false]), vec![true]);
        assert_eq!(spec.eval(&[true]), vec![false]);
    }
}
