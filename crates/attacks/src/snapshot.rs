//! A SnapShot-style attack (Sisejkovic et al., ACM JETC 2021):
//! self-referencing like OMLA, but with a plain MLP over a *flattened*
//! locality encoding instead of a GNN. Included as the "classic
//! tensor-based model" point of comparison the paper discusses in §II.

use crate::report::{AttackOutcome, AttackTarget, OracleLessAttack};
use crate::subgraph::{extract_all_localities, SubgraphConfig};
use almost_aig::{Aig, Script};
use almost_locking::{relock, Rll};
use almost_ml::gin::Graph;
use almost_ml::nn::Linear;
use almost_ml::optim::Adam;
use almost_ml::tape::{sigmoid, Tape};
use almost_ml::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SnapShot configuration.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotConfig {
    /// MLP hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Key gates per re-lock round.
    pub relock_key_size: usize,
    /// Training set size.
    pub training_samples: usize,
    /// Locality shape.
    pub subgraph: SubgraphConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            hidden: 32,
            epochs: 80,
            learning_rate: 5e-3,
            relock_key_size: 32,
            training_samples: 384,
            subgraph: SubgraphConfig::default(),
            seed: 0x5A4,
        }
    }
}

/// The SnapShot-style MLP attack.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Attack configuration.
    pub config: SnapshotConfig,
}

/// Flattens a locality graph into a fixed-length vector: per-distance-ring
/// sums of the node features (rings 0..hops), giving `(hops+1) * d`
/// entries. Distance is recovered from feature column 8 (see
/// `subgraph::extract_locality`).
fn flatten(graph: &Graph, hops: usize) -> Matrix {
    let d = graph.features.cols();
    let mut out = Matrix::zeros(1, (hops + 1) * d);
    for r in 0..graph.features.rows() {
        let dist_norm = graph.features.get(r, 8);
        let ring = ((dist_norm * hops as f32).round() as usize).min(hops);
        for c in 0..d {
            let cur = out.get(0, ring * d + c);
            out.set(0, ring * d + c, cur + graph.features.get(r, c));
        }
    }
    out
}

/// A trained SnapShot model: a 2-layer MLP.
#[derive(Clone, Debug)]
pub struct SnapshotModel {
    l1: Linear,
    l2: Linear,
    hops: usize,
}

impl SnapshotModel {
    fn logit(&self, tape: &mut Tape, x: &Matrix) -> almost_ml::tape::NodeId {
        let b1 = self.l1.bind(tape);
        let b2 = self.l2.bind(tape);
        let xn = tape.leaf(x.clone());
        let h = Linear::forward(b1, tape, xn);
        let h = tape.relu(h);
        Linear::forward(b2, tape, h)
    }

    /// Predicted probability the key bit is 1.
    pub fn predict(&self, graph: &Graph) -> f32 {
        let x = flatten(graph, self.hops);
        let mut tape = Tape::new();
        let l = self.logit(&mut tape, &x);
        sigmoid(tape.value(l).get(0, 0))
    }
}

impl Snapshot {
    /// A SnapShot attacker with the given configuration.
    pub fn new(config: SnapshotConfig) -> Self {
        Snapshot { config }
    }

    /// Trains the MLP on self-referenced localities.
    pub fn train_model(&self, deployed: &Aig, recipe: &Script) -> SnapshotModel {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let scheme = Rll::new(self.config.relock_key_size);
        let mut data: Vec<Graph> = Vec::new();
        while data.len() < self.config.training_samples {
            let Ok(relocked) = relock(&scheme, deployed, &mut rng) else {
                break;
            };
            let resynth = recipe.apply(&relocked.aig);
            let positions: Vec<usize> = relocked.key_input_positions().collect();
            data.extend(extract_all_localities(
                &resynth,
                &positions,
                relocked.key.bits(),
                &self.config.subgraph,
            ));
        }
        data.truncate(self.config.training_samples);

        let hops = self.config.subgraph.hops;
        let input_dim = (hops + 1) * crate::subgraph::NUM_FEATURES;
        let mut model = SnapshotModel {
            l1: Linear::new(input_dim, self.config.hidden, self.config.seed + 1),
            l2: Linear::new(self.config.hidden, 1, self.config.seed + 2),
            hops,
        };
        let flat: Vec<(Matrix, f32)> = data
            .iter()
            .map(|g| (flatten(g, hops), g.label as u8 as f32))
            .collect();

        let mut adam = Adam::new(self.config.learning_rate);
        let mut order: Vec<usize> = (0..flat.len()).collect();
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(32) {
                let mut tape = Tape::new();
                let b1 = model.l1.bind(&mut tape);
                let b2 = model.l2.bind(&mut tape);
                let mut losses = Vec::new();
                for &i in chunk {
                    let (x, y) = &flat[i];
                    let xn = tape.leaf(x.clone());
                    let h = Linear::forward(b1, &mut tape, xn);
                    let h = tape.relu(h);
                    let logit = Linear::forward(b2, &mut tape, h);
                    losses.push(tape.bce_with_logits(logit, *y));
                }
                if losses.is_empty() {
                    continue;
                }
                let mut total = losses[0];
                for &l in &losses[1..] {
                    total = tape.add(total, l);
                }
                let mean = tape.scale(total, 1.0 / chunk.len() as f32);
                tape.backward(mean);
                let nodes = [b1.w, b1.b, b2.w, b2.b];
                let grads: Vec<Matrix> = nodes
                    .iter()
                    .map(|&n| {
                        tape.grad(n).cloned().unwrap_or_else(|| {
                            let v = tape.value(n);
                            Matrix::zeros(v.rows(), v.cols())
                        })
                    })
                    .collect();
                let grad_refs: Vec<&Matrix> = grads.iter().collect();
                adam.step(
                    &mut [
                        &mut model.l1.w,
                        &mut model.l1.b,
                        &mut model.l2.w,
                        &mut model.l2.b,
                    ],
                    &grad_refs,
                );
            }
        }
        model
    }
}

impl OracleLessAttack for Snapshot {
    fn name(&self) -> &'static str {
        "SnapShot"
    }

    fn attack(&self, target: &AttackTarget) -> AttackOutcome {
        let model = self.train_model(&target.deployed, &target.recipe);
        let positions = target.key_positions();
        let dummy = vec![false; positions.len()];
        let graphs =
            extract_all_localities(&target.deployed, &positions, &dummy, &self.config.subgraph);
        let predicted: Vec<Option<bool>> = graphs
            .iter()
            .map(|g| Some(model.predict(g) >= 0.5))
            .collect();
        AttackOutcome::score("SnapShot", predicted, target.locked.key.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_circuits::IscasBenchmark;
    use almost_locking::LockingScheme;

    #[test]
    fn flatten_has_fixed_width() {
        let f = Matrix::zeros(3, crate::subgraph::NUM_FEATURES);
        let g = Graph::from_edges(3, &[(0, 1)], f, true);
        let x = flatten(&g, 3);
        assert_eq!(x.cols(), 4 * crate::subgraph::NUM_FEATURES);
    }

    #[test]
    fn snapshot_beats_chance_on_unsynthesised_locking() {
        let mut rng = StdRng::seed_from_u64(31);
        let base = IscasBenchmark::C880.build();
        let locked = Rll::new(32).lock(&base, &mut rng).expect("lockable");
        let target = AttackTarget::new(locked, Script::new());
        let cfg = SnapshotConfig {
            epochs: 30,
            training_samples: 160,
            ..SnapshotConfig::default()
        };
        let outcome = Snapshot::new(cfg).attack(&target);
        assert!(
            outcome.accuracy > 0.6,
            "expected recovery above chance, got {}",
            outcome.accuracy
        );
    }
}
