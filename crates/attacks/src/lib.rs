//! Oracle-less attacks on logic locking.
//!
//! The attacks the ALMOST paper evaluates against (its §II), implemented
//! over the workspace's own substrates:
//!
//! - [`Omla`] — GIN subgraph classification of key-gate localities with
//!   self-referencing training (re-lock → re-synthesise with the
//!   defender's recipe → label by inserted bits).
//! - [`Scope`] — unsupervised constant-propagation attack comparing
//!   synthesis reports under both constants of each key bit.
//! - [`Redundancy`] — non-ML testability attack counting SAT-proved
//!   untestable faults per key hypothesis.
//! - [`Snapshot`] — SnapShot-style MLP over flattened localities (the
//!   "classic tensor-based model" family the paper contrasts with OMLA).
//!
//! All attacks implement [`OracleLessAttack`] and are scored with the
//! paper's metric: correctly predicted key bits / key size, unresolved
//! bits counting as incorrect.

pub mod omla;
pub mod redundancy;
pub mod report;
pub mod scope;
pub mod snapshot;
pub mod subgraph;

pub use omla::{Omla, OmlaConfig};
pub use redundancy::{Redundancy, RedundancyConfig};
pub use report::{AttackOutcome, AttackTarget, OracleLessAttack};
pub use scope::{Scope, ScopeConfig};
pub use snapshot::{Snapshot, SnapshotConfig};
pub use subgraph::{extract_all_localities, SubgraphConfig, NUM_FEATURES};
