//! Oracle-less attacks on logic locking.
//!
//! The attacks the ALMOST paper evaluates against (its §II), implemented
//! over the workspace's own substrates:
//!
//! - [`Omla`] — GIN subgraph classification of key-gate localities with
//!   self-referencing training (re-lock → re-synthesise with the
//!   defender's recipe → label by inserted bits).
//! - [`Scope`] — unsupervised constant-propagation attack comparing
//!   synthesis reports under both constants of each key bit.
//! - [`Redundancy`] — non-ML testability attack counting SAT-proved
//!   untestable faults per key hypothesis.
//! - [`Snapshot`] — SnapShot-style MLP over flattened localities (the
//!   "classic tensor-based model" family the paper contrasts with OMLA).
//!
//! All of the above implement [`OracleLessAttack`] and are scored with the
//! paper's metric: correctly predicted key bits / key size, unresolved
//! bits counting as incorrect.
//!
//! The crate also implements the *oracle-guided* threat model the paper's
//! baselines are measured against in the wider literature:
//!
//! - [`SatAttack`] — the HOST'15 SAT attack: a DIP loop over
//!   key-conditioned miters with an activated-IC oracle, plus an
//!   AppSAT-style approximate mode with iteration/conflict budgets and
//!   random-query settlement. It implements [`OracleGuidedAttack`], and
//!   [`report::render_report`] shows both threat models side by side.
//! - [`DoubleDip`] — the GLSVLSI'17 2-DIP attack that strips
//!   point-function defences (`almost_locking::SarLock`,
//!   `almost_locking::AntiSat`): each accepted input is guaranteed to
//!   eliminate at least two wrong keys, so one-key-per-input flips can
//!   never stall it and the base scheme's key is recovered.
//!   [`report::render_dip_scaling`] prints the family's defence metric —
//!   DIPs required versus the `2^k` exhaustion ceiling.

pub mod double_dip;
pub mod omla;
pub mod redundancy;
pub mod report;
pub mod sat_attack;
pub mod scope;
pub mod snapshot;
pub mod subgraph;
pub mod testutil;

pub use double_dip::{DoubleDip, DoubleDipConfig, DoubleDipRun};
pub use omla::{Omla, OmlaConfig};
pub use redundancy::{Redundancy, RedundancyConfig};
pub use report::{
    dip_log_consistent, render_dip_scaling, render_report, AttackOutcome, AttackTarget,
    DipIteration, DipScalingRow, OracleAttackOutcome, OracleGuidedAttack, OracleLessAttack,
    PortfolioStats, SolverStats,
};
pub use sat_attack::{SatAttack, SatAttackConfig, SatAttackMode, SatAttackRun};
pub use scope::{Scope, ScopeConfig};
pub use snapshot::{Snapshot, SnapshotConfig};
pub use subgraph::{extract_all_localities, SubgraphConfig, NUM_FEATURES};
