//! Attack targets and outcome reporting.

use almost_aig::{Aig, Script};
use almost_locking::LockedCircuit;

/// Everything an oracle-less attacker sees: the deployed (synthesised)
/// locked netlist and — per the paper's threat model — the defender's
/// synthesis recipe.
#[derive(Clone, Debug)]
pub struct AttackTarget {
    /// The locked circuit (pre-synthesis), including ground truth used only
    /// for scoring.
    pub locked: LockedCircuit,
    /// The defender's synthesis recipe (known to the attacker).
    pub recipe: Script,
    /// The deployed netlist: `recipe` applied to the locked circuit.
    pub deployed: Aig,
}

impl AttackTarget {
    /// Synthesises the locked circuit with `recipe` and packages the
    /// target.
    pub fn new(locked: LockedCircuit, recipe: Script) -> Self {
        let deployed = recipe.apply(&locked.aig);
        AttackTarget {
            locked,
            recipe,
            deployed,
        }
    }

    /// Input positions of the victim key inputs.
    pub fn key_positions(&self) -> Vec<usize> {
        self.locked.key_input_positions().collect()
    }
}

/// The outcome of an attack run.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: String,
    /// Per-bit prediction; `None` means the attack left the bit
    /// unresolved.
    pub predicted: Vec<Option<bool>>,
    /// Key-recovery accuracy: correctly predicted bits / key size
    /// (unresolved bits count as incorrect, matching the paper's metric).
    pub accuracy: f64,
}

impl AttackOutcome {
    /// Scores predictions against the true key bits.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn score(attack: impl Into<String>, predicted: Vec<Option<bool>>, truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "prediction length mismatch");
        let correct = predicted
            .iter()
            .zip(truth)
            .filter(|(p, t)| p.as_ref() == Some(t))
            .count();
        let accuracy = if truth.is_empty() {
            0.0
        } else {
            correct as f64 / truth.len() as f64
        };
        AttackOutcome {
            attack: attack.into(),
            predicted,
            accuracy,
        }
    }

    /// Number of unresolved bits.
    pub fn num_unresolved(&self) -> usize {
        self.predicted.iter().filter(|p| p.is_none()).count()
    }
}

/// An oracle-less attack on logic locking.
pub trait OracleLessAttack {
    /// The attack's display name.
    fn name(&self) -> &'static str;

    /// Runs the attack and scores it against the ground truth in `target`.
    fn attack(&self, target: &AttackTarget) -> AttackOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_counts_unresolved_as_incorrect() {
        let truth = vec![true, false, true, true];
        let pred = vec![Some(true), Some(true), None, Some(true)];
        let out = AttackOutcome::score("test", pred, &truth);
        assert_eq!(out.accuracy, 0.5);
        assert_eq!(out.num_unresolved(), 1);
    }

    #[test]
    fn empty_key_scores_zero() {
        let out = AttackOutcome::score("test", vec![], &[]);
        assert_eq!(out.accuracy, 0.0);
    }
}
