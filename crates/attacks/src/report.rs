//! Attack targets and outcome reporting, for both threat models:
//! oracle-less attacks ([`OracleLessAttack`], scored per key bit) and
//! oracle-guided attacks ([`OracleGuidedAttack`], the SAT-attack family,
//! which additionally consume an activated-IC [`Oracle`]).

use almost_aig::{Aig, Script};
use almost_locking::{LockedCircuit, Oracle};

/// Everything an oracle-less attacker sees: the deployed (synthesised)
/// locked netlist and — per the paper's threat model — the defender's
/// synthesis recipe.
#[derive(Clone, Debug)]
pub struct AttackTarget {
    /// The locked circuit (pre-synthesis), including ground truth used only
    /// for scoring.
    pub locked: LockedCircuit,
    /// The defender's synthesis recipe (known to the attacker).
    pub recipe: Script,
    /// The deployed netlist: `recipe` applied to the locked circuit.
    pub deployed: Aig,
}

impl AttackTarget {
    /// Synthesises the locked circuit with `recipe` and packages the
    /// target.
    pub fn new(locked: LockedCircuit, recipe: Script) -> Self {
        let deployed = recipe.apply(&locked.aig);
        AttackTarget {
            locked,
            recipe,
            deployed,
        }
    }

    /// Input positions of the victim key inputs.
    pub fn key_positions(&self) -> Vec<usize> {
        self.locked.key_input_positions().collect()
    }
}

/// The outcome of an attack run.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: String,
    /// Per-bit prediction; `None` means the attack left the bit
    /// unresolved.
    pub predicted: Vec<Option<bool>>,
    /// Key-recovery accuracy: correctly predicted bits / key size
    /// (unresolved bits count as incorrect, matching the paper's metric).
    pub accuracy: f64,
}

impl AttackOutcome {
    /// Scores predictions against the true key bits.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn score(attack: impl Into<String>, predicted: Vec<Option<bool>>, truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "prediction length mismatch");
        let correct = predicted
            .iter()
            .zip(truth)
            .filter(|(p, t)| p.as_ref() == Some(t))
            .count();
        let accuracy = if truth.is_empty() {
            0.0
        } else {
            correct as f64 / truth.len() as f64
        };
        AttackOutcome {
            attack: attack.into(),
            predicted,
            accuracy,
        }
    }

    /// Number of unresolved bits.
    pub fn num_unresolved(&self) -> usize {
        self.predicted.iter().filter(|p| p.is_none()).count()
    }
}

/// An oracle-less attack on logic locking.
pub trait OracleLessAttack {
    /// The attack's display name.
    fn name(&self) -> &'static str;

    /// Runs the attack and scores it against the ground truth in `target`.
    fn attack(&self, target: &AttackTarget) -> AttackOutcome;
}

/// One iteration of a DIP-driven attack loop (for per-iteration reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DipIteration {
    /// Cumulative distinguishing input patterns found after this iteration.
    pub dip_count: usize,
    /// Cumulative solver conflicts after this iteration.
    pub conflicts: u64,
    /// Oracle disagreements found while validating a settled candidate key
    /// (`Some` only on approximate-mode settlement iterations).
    pub settlement_mismatches: Option<usize>,
}

/// The outcome of an oracle-guided attack run.
#[derive(Clone, Debug)]
pub struct OracleAttackOutcome {
    /// Attack name.
    pub attack: String,
    /// The recovered key (one bit per key input).
    pub recovered: Vec<bool>,
    /// True when the DIP loop terminated with an UNSAT miter — the
    /// recovered key is then *provably* functionally correct.
    pub proved_exact: bool,
    /// True when the unlocked circuit was SAT-CEC-verified equivalent to
    /// the deployed circuit under the true key.
    pub functionally_correct: bool,
    /// Per-iteration log of the DIP loop.
    pub iterations: Vec<DipIteration>,
    /// Oracle queries consumed (DIP responses plus validation queries).
    pub oracle_queries: usize,
    /// Bit-agreement with the ground-truth key. Distinct keys can be
    /// functionally identical, so `functionally_correct` is the security
    /// verdict; this is the paper-style scoreboard number.
    pub accuracy: f64,
    /// Wall-clock duration of the attack.
    pub runtime: std::time::Duration,
}

impl OracleAttackOutcome {
    /// Total DIPs found.
    pub fn dip_count(&self) -> usize {
        self.iterations.last().map_or(0, |it| it.dip_count)
    }

    /// The per-iteration DIP counts (approximate-mode reporting).
    pub fn dip_counts(&self) -> Vec<usize> {
        self.iterations.iter().map(|it| it.dip_count).collect()
    }
}

/// An oracle-guided attack on logic locking: in addition to the deployed
/// netlist it may query an activated chip.
pub trait OracleGuidedAttack {
    /// The attack's display name.
    fn name(&self) -> &'static str;

    /// Runs the attack against `target` using `oracle` for I/O queries,
    /// and scores the recovered key against the ground truth in `target`.
    fn attack_with_oracle(&self, target: &AttackTarget, oracle: &dyn Oracle)
        -> OracleAttackOutcome;
}

/// Renders oracle-less and oracle-guided results as one table, the paper's
/// "all attacks vs one defence" view.
pub fn render_report(
    oracle_less: &[AttackOutcome],
    oracle_guided: &[OracleAttackOutcome],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:>9} {:>7} {:>8}  notes",
        "attack", "threat model", "accuracy", "DIPs", "queries"
    );
    for o in oracle_less {
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>8.2}% {:>7} {:>8}  {} unresolved bits",
            o.attack,
            "oracle-less",
            o.accuracy * 100.0,
            "-",
            "-",
            o.num_unresolved()
        );
    }
    for o in oracle_guided {
        let verdict = if o.proved_exact {
            "exact (UNSAT proof)"
        } else if o.functionally_correct {
            "approximate, verified correct"
        } else {
            "approximate"
        };
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>8.2}% {:>7} {:>8}  {verdict}, {:.1}s",
            o.attack,
            "oracle-guided",
            o.accuracy * 100.0,
            o.dip_count(),
            o.oracle_queries,
            o.runtime.as_secs_f64()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_counts_unresolved_as_incorrect() {
        let truth = vec![true, false, true, true];
        let pred = vec![Some(true), Some(true), None, Some(true)];
        let out = AttackOutcome::score("test", pred, &truth);
        assert_eq!(out.accuracy, 0.5);
        assert_eq!(out.num_unresolved(), 1);
    }

    #[test]
    fn empty_key_scores_zero() {
        let out = AttackOutcome::score("test", vec![], &[]);
        assert_eq!(out.accuracy, 0.0);
    }

    fn sample_oracle_outcome() -> OracleAttackOutcome {
        OracleAttackOutcome {
            attack: "SAT".into(),
            recovered: vec![true, false],
            proved_exact: true,
            functionally_correct: true,
            iterations: vec![
                DipIteration {
                    dip_count: 1,
                    conflicts: 4,
                    settlement_mismatches: None,
                },
                DipIteration {
                    dip_count: 3,
                    conflicts: 9,
                    settlement_mismatches: Some(0),
                },
            ],
            oracle_queries: 3,
            accuracy: 1.0,
            runtime: std::time::Duration::from_millis(12),
        }
    }

    #[test]
    fn dip_counts_come_from_the_iteration_log() {
        let out = sample_oracle_outcome();
        assert_eq!(out.dip_count(), 3);
        assert_eq!(out.dip_counts(), vec![1, 3]);
    }

    #[test]
    fn combined_report_renders_both_threat_models() {
        let less = AttackOutcome::score("OMLA", vec![Some(true), None], &[true, false]);
        let guided = sample_oracle_outcome();
        let table = render_report(&[less], &[guided]);
        assert!(table.contains("oracle-less"));
        assert!(table.contains("oracle-guided"));
        assert!(table.contains("OMLA"));
        assert!(table.contains("SAT"));
        assert!(table.contains("exact (UNSAT proof)"));
    }
}
