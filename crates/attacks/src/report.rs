//! Attack targets and outcome reporting, for both threat models:
//! oracle-less attacks ([`OracleLessAttack`], scored per key bit) and
//! oracle-guided attacks ([`OracleGuidedAttack`], the SAT-attack family,
//! which additionally consume an activated-IC [`BatchOracle`]).

use almost_aig::{Aig, Script};
use almost_locking::{BatchOracle, LockedCircuit};

pub use almost_sat::{PortfolioStats, SolverStats};

/// Everything an oracle-less attacker sees: the deployed (synthesised)
/// locked netlist and — per the paper's threat model — the defender's
/// synthesis recipe.
#[derive(Clone, Debug)]
pub struct AttackTarget {
    /// The locked circuit (pre-synthesis), including ground truth used only
    /// for scoring.
    pub locked: LockedCircuit,
    /// The defender's synthesis recipe (known to the attacker).
    pub recipe: Script,
    /// The deployed netlist: `recipe` applied to the locked circuit.
    pub deployed: Aig,
}

impl AttackTarget {
    /// Synthesises the locked circuit with `recipe` and packages the
    /// target.
    pub fn new(locked: LockedCircuit, recipe: Script) -> Self {
        let deployed = recipe.apply(&locked.aig);
        AttackTarget {
            locked,
            recipe,
            deployed,
        }
    }

    /// Input positions of the victim key inputs.
    pub fn key_positions(&self) -> Vec<usize> {
        self.locked.key_input_positions().collect()
    }
}

/// The outcome of an attack run.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: String,
    /// Per-bit prediction; `None` means the attack left the bit
    /// unresolved.
    pub predicted: Vec<Option<bool>>,
    /// Key-recovery accuracy: correctly predicted bits / key size
    /// (unresolved bits count as incorrect, matching the paper's metric).
    pub accuracy: f64,
}

impl AttackOutcome {
    /// Scores predictions against the true key bits.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn score(attack: impl Into<String>, predicted: Vec<Option<bool>>, truth: &[bool]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "prediction length mismatch");
        let correct = predicted
            .iter()
            .zip(truth)
            .filter(|(p, t)| p.as_ref() == Some(t))
            .count();
        let accuracy = if truth.is_empty() {
            0.0
        } else {
            correct as f64 / truth.len() as f64
        };
        AttackOutcome {
            attack: attack.into(),
            predicted,
            accuracy,
        }
    }

    /// Number of unresolved bits.
    pub fn num_unresolved(&self) -> usize {
        self.predicted.iter().filter(|p| p.is_none()).count()
    }
}

/// An oracle-less attack on logic locking.
pub trait OracleLessAttack {
    /// The attack's display name.
    fn name(&self) -> &'static str;

    /// Runs the attack and scores it against the ground truth in `target`.
    fn attack(&self, target: &AttackTarget) -> AttackOutcome;
}

/// One iteration of a DIP-driven attack loop (for per-iteration reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DipIteration {
    /// Cumulative distinguishing input patterns found after this iteration.
    pub dip_count: usize,
    /// Cumulative solver conflicts after this iteration.
    pub conflicts: u64,
    /// Cumulative oracle queries *issued by the attack* after this
    /// iteration. Counted independently of [`Oracle::queries_served`] so
    /// the two ledgers reconcile — [`dip_log_consistent`] is the audit.
    pub oracle_queries: usize,
    /// Oracle disagreements found while validating a settled candidate key
    /// (`Some` only on approximate-mode settlement iterations).
    pub settlement_mismatches: Option<usize>,
}

/// Audits a DIP-loop iteration log against the attack's reported oracle
/// query total:
///
/// 1. a DIP iteration adds exactly one DIP and one oracle query;
/// 2. a settlement iteration adds exactly its mismatch count to the DIP
///    ledger and at least that many validation queries;
/// 3. the final cumulative query count equals `total_queries`.
///
/// Every attack run asserts this in debug builds; the regression tests
/// assert it unconditionally so iteration-accounting drift cannot land.
pub fn dip_log_consistent(iterations: &[DipIteration], total_queries: usize) -> bool {
    let mut dips = 0usize;
    let mut queries = 0usize;
    for it in iterations {
        match it.settlement_mismatches {
            None => {
                dips += 1;
                queries += 1;
                if it.oracle_queries != queries {
                    return false;
                }
            }
            Some(m) => {
                dips += m;
                if it.oracle_queries < queries + m {
                    return false;
                }
                queries = it.oracle_queries;
            }
        }
        if it.dip_count != dips {
            return false;
        }
    }
    queries == total_queries
}

/// The outcome of an oracle-guided attack run.
#[derive(Clone, Debug)]
pub struct OracleAttackOutcome {
    /// Attack name.
    pub attack: String,
    /// The recovered key (one bit per key input).
    pub recovered: Vec<bool>,
    /// True when the DIP loop terminated with an UNSAT miter — the
    /// recovered key is then *provably* functionally correct.
    pub proved_exact: bool,
    /// True when the unlocked circuit was SAT-CEC-verified equivalent to
    /// the deployed circuit under the true key.
    pub functionally_correct: bool,
    /// Per-iteration log of the DIP loop.
    pub iterations: Vec<DipIteration>,
    /// Oracle queries consumed (DIP responses plus validation queries).
    pub oracle_queries: usize,
    /// Bit-agreement with the ground-truth key. Distinct keys can be
    /// functionally identical, so `functionally_correct` is the security
    /// verdict; this is the paper-style scoreboard number.
    pub accuracy: f64,
    /// Wall-clock duration of the attack.
    pub runtime: std::time::Duration,
    /// Solver-effort counters of the attack's miter (decisions,
    /// propagations, conflicts, restarts, learnts kept/deleted) — the
    /// behavioural audit trail for heuristic changes in the CDCL core.
    pub solver: SolverStats,
}

impl OracleAttackOutcome {
    /// Total DIPs found.
    pub fn dip_count(&self) -> usize {
        self.iterations.last().map_or(0, |it| it.dip_count)
    }

    /// The per-iteration DIP counts (approximate-mode reporting).
    pub fn dip_counts(&self) -> Vec<usize> {
        self.iterations.iter().map(|it| it.dip_count).collect()
    }

    /// True when the per-iteration DIP log reconciles with the reported
    /// oracle query count (see [`dip_log_consistent`]).
    pub fn accounting_consistent(&self) -> bool {
        dip_log_consistent(&self.iterations, self.oracle_queries)
    }
}

/// Conflict budget for the scoreboard CEC in oracle-guided scoring; past
/// it, scoring falls back to the random-simulation verdict (the attack
/// result itself is unaffected). Arithmetic circuits (the c6288
/// multiplier) make full CEC exponentially hard and a scoreboard entry
/// must never hang a harness.
const CEC_SCORING_CONFLICTS: u64 = 50_000;

/// Scores a finished oracle-guided run against the ground truth in
/// `target`: bit agreement for the scoreboard, simulation + budgeted SAT
/// CEC for the functional verdict. Shared by every [`OracleGuidedAttack`]
/// so all rows of a report are judged identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_oracle_run(
    attack: String,
    target: &AttackTarget,
    recovered: Vec<bool>,
    proved_exact: bool,
    iterations: Vec<DipIteration>,
    oracle_queries: usize,
    runtime: std::time::Duration,
    solver: SolverStats,
    sim_seed: u64,
) -> OracleAttackOutcome {
    use almost_aig::sim::probably_equivalent;
    use almost_sat::{check_equivalence_limited, Equivalence};

    let truth = target.locked.key.bits();
    let agreement = truth.iter().zip(&recovered).filter(|(t, r)| t == r).count();
    let accuracy = if truth.is_empty() {
        0.0
    } else {
        agreement as f64 / truth.len() as f64
    };
    let key_start = target.locked.key_input_start;
    let unlocked = almost_locking::apply_key(&target.deployed, key_start, &recovered);
    let reference = almost_locking::apply_key(&target.deployed, key_start, truth);
    // 4096-pattern simulation refutes grossly wrong keys immediately; a
    // conflict-bounded CEC upgrades agreement to a proof where feasible
    // (and is what catches point-function keys wrong on one pattern).
    let functionally_correct = probably_equivalent(&unlocked, &reference, 64, sim_seed)
        && match check_equivalence_limited(&unlocked, &reference, CEC_SCORING_CONFLICTS) {
            Some(verdict) => verdict == Equivalence::Equivalent,
            None => true,
        };

    OracleAttackOutcome {
        attack,
        recovered,
        proved_exact,
        functionally_correct,
        iterations,
        oracle_queries,
        accuracy,
        runtime,
        solver,
    }
}

/// An oracle-guided attack on logic locking: in addition to the deployed
/// netlist it may query an activated chip.
pub trait OracleGuidedAttack {
    /// The attack's display name.
    fn name(&self) -> &'static str;

    /// Runs the attack against `target` using `oracle` for I/O queries,
    /// and scores the recovered key against the ground truth in `target`.
    /// The oracle comes in through [`BatchOracle`] so attacks can answer
    /// many validation/probe patterns per call; counters still advance
    /// one per pattern ([`almost_locking::Oracle::queries_served`]).
    fn attack_with_oracle(
        &self,
        target: &AttackTarget,
        oracle: &dyn BatchOracle,
    ) -> OracleAttackOutcome;
}

/// Renders oracle-less and oracle-guided results as one table, the paper's
/// "all attacks vs one defence" view.
pub fn render_report(
    oracle_less: &[AttackOutcome],
    oracle_guided: &[OracleAttackOutcome],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:>9} {:>7} {:>8} {:>10} {:>9} {:>8}  notes",
        "attack",
        "threat model",
        "accuracy",
        "DIPs",
        "queries",
        "decisions",
        "conflicts",
        "restarts"
    );
    for o in oracle_less {
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>8.2}% {:>7} {:>8} {:>10} {:>9} {:>8}  {} unresolved bits",
            o.attack,
            "oracle-less",
            o.accuracy * 100.0,
            "-",
            "-",
            "-",
            "-",
            "-",
            o.num_unresolved()
        );
    }
    for o in oracle_guided {
        let verdict = if o.proved_exact {
            "exact (UNSAT proof)"
        } else if o.functionally_correct {
            "approximate, verified correct"
        } else {
            "approximate"
        };
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>8.2}% {:>7} {:>8} {:>10} {:>9} {:>8}  {verdict}, {:.1}s",
            o.attack,
            "oracle-guided",
            o.accuracy * 100.0,
            o.dip_count(),
            o.oracle_queries,
            o.solver.decisions,
            o.solver.conflicts,
            o.solver.restarts,
            o.runtime.as_secs_f64()
        );
    }
    out
}

/// One row of the DIP-count-vs-key-size table: how many DIPs an attack
/// spent on a scheme at a given security parameter, against the `2^k`
/// exhaustion ceiling.
#[derive(Clone, Debug)]
pub struct DipScalingRow {
    /// Locking scheme (e.g. "SARLock", "Anti-SAT", "SARLock+RLL").
    pub scheme: String,
    /// Attack name (e.g. "SAT", "DoubleDIP").
    pub attack: String,
    /// The scheme's security parameter `k` (point-function width for the
    /// SAT-resilient family, key bits for RLL).
    pub key_size: usize,
    /// DIPs consumed by the attack.
    pub dips: usize,
    /// Whether the attack finished inside its budget (an exhausted budget
    /// is the *defence* succeeding).
    pub finished: bool,
    /// Whether the recovered key was functionally correct (for
    /// point-function schemes, Double-DIP keys are correct up to the
    /// stripped one-input flip, so this reports the *base* verdict the
    /// caller computed).
    pub correct: bool,
    /// Solver-effort counters of the attack run (the DIPs column says how
    /// many oracle queries the defence extracted; this says how hard the
    /// solver worked to extract them).
    pub solver: SolverStats,
}

/// Renders DIP-count-vs-key-size rows — the defence metric of the
/// SAT-resilient locking family (DIPs required, not attack accuracy).
pub fn render_dip_scaling(rows: &[DipScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:>4} {:>7} {:>6} {:>9} {:>8} {:>10} {:>9} {:>8}",
        "scheme",
        "attack",
        "k",
        "DIPs",
        "2^k",
        "finished",
        "correct",
        "decisions",
        "conflicts",
        "restarts"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:>4} {:>7} {:>6} {:>9} {:>8} {:>10} {:>9} {:>8}",
            r.scheme,
            r.attack,
            r.key_size,
            r.dips,
            1usize << r.key_size.min(63),
            r.finished,
            r.correct,
            r.solver.decisions,
            r.solver.conflicts,
            r.solver.restarts
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_counts_unresolved_as_incorrect() {
        let truth = vec![true, false, true, true];
        let pred = vec![Some(true), Some(true), None, Some(true)];
        let out = AttackOutcome::score("test", pred, &truth);
        assert_eq!(out.accuracy, 0.5);
        assert_eq!(out.num_unresolved(), 1);
    }

    #[test]
    fn empty_key_scores_zero() {
        let out = AttackOutcome::score("test", vec![], &[]);
        assert_eq!(out.accuracy, 0.0);
    }

    fn sample_oracle_outcome() -> OracleAttackOutcome {
        OracleAttackOutcome {
            attack: "SAT".into(),
            recovered: vec![true, false],
            proved_exact: true,
            functionally_correct: true,
            iterations: vec![
                DipIteration {
                    dip_count: 1,
                    conflicts: 4,
                    oracle_queries: 1,
                    settlement_mismatches: None,
                },
                DipIteration {
                    dip_count: 3,
                    conflicts: 9,
                    oracle_queries: 9,
                    settlement_mismatches: Some(2),
                },
            ],
            oracle_queries: 9,
            accuracy: 1.0,
            runtime: std::time::Duration::from_millis(12),
            solver: SolverStats {
                decisions: 40,
                propagations: 200,
                conflicts: 9,
                restarts: 1,
                learnts_kept: 7,
                learnts_deleted: 2,
            },
        }
    }

    #[test]
    fn dip_counts_come_from_the_iteration_log() {
        let out = sample_oracle_outcome();
        assert_eq!(out.dip_count(), 3);
        assert_eq!(out.dip_counts(), vec![1, 3]);
    }

    #[test]
    fn dip_log_audit_accepts_consistent_and_rejects_drifted_logs() {
        let good = sample_oracle_outcome();
        assert!(good.accounting_consistent());

        // Drift 1: a DIP iteration that forgot to count its oracle query.
        let mut bad = sample_oracle_outcome();
        bad.iterations[0].oracle_queries = 0;
        assert!(!bad.accounting_consistent());

        // Drift 2: a settlement whose DIP ledger skips a mismatch.
        let mut bad = sample_oracle_outcome();
        bad.iterations[1].dip_count = 2;
        assert!(!bad.accounting_consistent());

        // Drift 3: reported total disagrees with the per-iteration log.
        let bad = sample_oracle_outcome();
        assert!(!dip_log_consistent(&bad.iterations, 10));

        // Drift 4: settlement logging fewer queries than mismatches.
        let mut bad = sample_oracle_outcome();
        bad.iterations[1].oracle_queries = 2;
        assert!(!dip_log_consistent(&bad.iterations, 2));
    }

    #[test]
    fn empty_log_reconciles_only_with_zero_queries() {
        assert!(dip_log_consistent(&[], 0));
        assert!(!dip_log_consistent(&[], 1));
    }

    #[test]
    fn dip_scaling_table_renders_the_exhaustion_ceiling() {
        let rows = vec![
            DipScalingRow {
                scheme: "SARLock".into(),
                attack: "SAT".into(),
                key_size: 6,
                dips: 63,
                finished: true,
                correct: true,
                solver: SolverStats {
                    decisions: 1234,
                    conflicts: 77,
                    ..SolverStats::default()
                },
            },
            DipScalingRow {
                scheme: "SARLock+RLL".into(),
                attack: "DoubleDIP".into(),
                key_size: 12,
                dips: 19,
                finished: true,
                correct: true,
                solver: SolverStats::default(),
            },
        ];
        let table = render_dip_scaling(&rows);
        assert!(table.contains("SARLock"));
        assert!(table.contains("DoubleDIP"));
        assert!(table.contains("64"), "2^6 ceiling column");
        assert!(table.contains("4096"), "2^12 ceiling column");
        assert!(table.contains("decisions"), "solver-effort header");
        assert!(table.contains("1234"), "decision count column");
    }

    #[test]
    fn combined_report_renders_both_threat_models() {
        let less = AttackOutcome::score("OMLA", vec![Some(true), None], &[true, false]);
        let guided = sample_oracle_outcome();
        let table = render_report(&[less], &[guided]);
        assert!(table.contains("oracle-less"));
        assert!(table.contains("oracle-guided"));
        assert!(table.contains("OMLA"));
        assert!(table.contains("SAT"));
        assert!(table.contains("exact (UNSAT proof)"));
    }
}
