//! Shared attack-test preludes.
//!
//! Every oracle-guided test used to open with the same copy-pasted
//! ritual: seed an RNG, lock a benchmark, build the activated-chip
//! oracle (and sometimes wrap the lock in an [`AttackTarget`]). These
//! constructors are that ritual, written once — used by this crate's
//! unit tests and by the repo-level differential suite
//! (`tests/oracle_parity.rs`), so every harness exercises the exact same
//! setup path.

use crate::report::AttackTarget;
use almost_aig::{Aig, Script};
use almost_locking::{CircuitOracle, LockedCircuit, LockingScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Locks `design` with `scheme` under a deterministic seed.
///
/// # Panics
///
/// Panics when the scheme rejects the circuit (too few gates for the
/// configured key size) — test circuits are chosen to fit.
pub fn lock_with(design: &Aig, scheme: &dyn LockingScheme, seed: u64) -> LockedCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    scheme
        .lock(design, &mut rng)
        .unwrap_or_else(|e| panic!("{} must lock the test circuit: {e}", scheme.name()))
}

/// The standard oracle-guided prelude: lock `design`, then build the
/// activated-chip oracle from the locked circuit's correct key.
pub fn locked_oracle(
    design: &Aig,
    scheme: &dyn LockingScheme,
    seed: u64,
) -> (LockedCircuit, CircuitOracle) {
    let locked = lock_with(design, scheme, seed);
    let oracle = CircuitOracle::from_locked(&locked);
    (locked, oracle)
}

/// The trait-level prelude: lock, wrap in an [`AttackTarget`] deployed
/// with `recipe`, and build the oracle.
pub fn locked_target(
    design: &Aig,
    scheme: &dyn LockingScheme,
    recipe: Script,
    seed: u64,
) -> (AttackTarget, CircuitOracle) {
    let locked = lock_with(design, scheme, seed);
    let oracle = CircuitOracle::from_locked(&locked);
    (AttackTarget::new(locked, recipe), oracle)
}
