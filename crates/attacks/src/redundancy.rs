//! The redundancy attack: key recovery through testability analysis
//! (Li & Orailoglu, DATE 2019).
//!
//! Premise: shipped designs are fully testable, so the *correct* key
//! assignment yields a circuit with few untestable (redundant) stuck-at
//! faults; a wrong key constant introduces logic redundancy. For each key
//! bit the attack specialises the netlist under both constants, counts
//! SAT-proved-untestable faults over a sampled fault list, and picks the
//! hypothesis with fewer untestable faults.

use crate::report::{AttackOutcome, AttackTarget, OracleLessAttack};
use almost_aig::{Aig, Var};
use almost_locking::apply_key;
use almost_sat::test_stuck_at;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Redundancy-attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct RedundancyConfig {
    /// Number of fault sites sampled per hypothesis (each checked for both
    /// stuck-at-0 and stuck-at-1).
    pub fault_samples: usize,
    /// If set, only this many key bits (evenly sampled) are attacked;
    /// accuracy is reported over the sampled bits.
    pub max_bits: Option<usize>,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for RedundancyConfig {
    fn default() -> Self {
        RedundancyConfig {
            fault_samples: 24,
            max_bits: None,
            seed: 0xFA017,
        }
    }
}

/// The redundancy attack.
#[derive(Clone, Debug, Default)]
pub struct Redundancy {
    /// Attack configuration.
    pub config: RedundancyConfig,
}

impl Redundancy {
    /// A redundancy attacker with the given configuration.
    pub fn new(config: RedundancyConfig) -> Self {
        Redundancy { config }
    }

    /// Counts untestable faults in `aig` over a deterministic fault
    /// sample.
    pub fn count_untestable(&self, aig: &Aig, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Var> = aig.iter_ands().collect();
        sites.shuffle(&mut rng);
        sites.truncate(self.config.fault_samples);
        let mut untestable = 0;
        for &site in &sites {
            for value in [false, true] {
                if test_stuck_at(aig, site, value).is_none() {
                    untestable += 1;
                }
            }
        }
        untestable
    }

    /// Decides one key bit; `None` when both hypotheses are equally
    /// redundant.
    pub fn decide_bit(&self, deployed: &Aig, key_start: usize, bit_offset: usize) -> Option<bool> {
        let mut counts = [0usize; 2];
        for (i, value) in [false, true].into_iter().enumerate() {
            let specialised = apply_key(deployed, key_start + bit_offset, &[value]);
            counts[i] = self.count_untestable(&specialised, self.config.seed ^ bit_offset as u64);
        }
        match counts[0].cmp(&counts[1]) {
            std::cmp::Ordering::Less => Some(false),
            std::cmp::Ordering::Greater => Some(true),
            std::cmp::Ordering::Equal => None,
        }
    }
}

impl OracleLessAttack for Redundancy {
    fn name(&self) -> &'static str {
        "Redundancy"
    }

    fn attack(&self, target: &AttackTarget) -> AttackOutcome {
        let key_start = target.locked.key_input_start;
        let key_size = target.locked.key_size();
        let bits = crate::scope::sample_bits(key_size, self.config.max_bits);
        let predicted: Vec<Option<bool>> = bits
            .iter()
            .map(|&k| self.decide_bit(&target.deployed, key_start, k))
            .collect();
        let truth: Vec<bool> = bits.iter().map(|&k| target.locked.key.bits()[k]).collect();
        AttackOutcome::score("Redundancy", predicted, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_aig::Script;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};

    #[test]
    fn untestable_count_detects_redundancy() {
        // A redundant circuit: out = x | (x & y). The (x & y) node's
        // stuck-at-0 is untestable.
        let mut redundant = Aig::new();
        let x = redundant.add_input();
        let y = redundant.add_input();
        let xy = redundant.and(x, y);
        let out = redundant.or(x, xy);
        redundant.add_output(out);
        redundant.add_output(xy); // keep the node observable on its own too

        // An irredundant circuit of the same size: out = x & y, out2 = x^y.
        let mut clean = Aig::new();
        let a = clean.add_input();
        let b = clean.add_input();
        let f = clean.and(a, b);
        let g = clean.xor(a, b);
        clean.add_output(f);
        clean.add_output(g);

        let att = Redundancy::new(RedundancyConfig {
            fault_samples: 16,
            seed: 1,
            ..RedundancyConfig::default()
        });
        // In `redundant`, at least the masked fault exists when only `out`
        // is observable; rebuild without the second output.
        let mut masked = Aig::new();
        let x2 = masked.add_input();
        let y2 = masked.add_input();
        let xy2 = masked.and(x2, y2);
        let o2 = masked.or(x2, xy2);
        masked.add_output(o2);
        assert!(att.count_untestable(&masked, 3) > 0);
        assert_eq!(att.count_untestable(&clean, 3), 0);
    }

    #[test]
    fn attack_returns_full_vector() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(6).lock(&base, &mut rng).expect("lockable");
        let target = AttackTarget::new(locked, Script::new());
        let att = Redundancy::new(RedundancyConfig {
            fault_samples: 8,
            seed: 2,
            ..RedundancyConfig::default()
        });
        let outcome = att.attack(&target);
        assert_eq!(outcome.predicted.len(), 6);
        assert!((0.0..=1.0).contains(&outcome.accuracy));
    }
}
