//! The oracle-guided SAT attack [Subramanyan et al., HOST'15] and its
//! AppSAT-style approximate variant.
//!
//! The attack repeatedly asks a key-conditioned miter
//! ([`almost_sat::KeyMiter`]) for a *distinguishing input pattern* — an
//! input on which two candidate keys disagree — queries the activated-IC
//! oracle for the correct output, and constrains both key copies to agree
//! with it. When no DIP remains, every key consistent with the collected
//! I/O pairs is functionally correct and one is decoded from the solver.
//!
//! This is the strongest classical baseline the locking literature measures
//! against: it defeats RLL outright (which is why the ALMOST paper's threat
//! model retreats to oracle-*less* attackers). Reproducing it lets the
//! workspace show both columns of the security picture — ML attacks pushed
//! to ~50% by synthesis tuning, SAT attack still recovering the exact key
//! whenever an oracle exists.
//!
//! The approximate mode trades the exactness proof for bounded effort, in
//! the spirit of AppSAT [Shamsi et al., HOST'17]: iteration and
//! per-query conflict budgets cap the solver work, and when a budget
//! trips, the current candidate key is *settled* and validated against
//! random oracle queries; disagreements are fed back as ordinary I/O
//! constraints. Every iteration is recorded, so reports can show the DIP
//! count trajectory.

use crate::report::{
    dip_log_consistent, score_oracle_run, AttackTarget, DipIteration, OracleAttackOutcome,
    OracleGuidedAttack,
};
use almost_aig::CompiledAig;
use almost_locking::BatchOracle;
use almost_sat::miter::{DipSearch, KeyMiter};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Cap on counterexample constraints added per settlement round; each one
/// encodes two key-conditioned circuit residues into the solver.
const MAX_SETTLEMENT_CONSTRAINTS: usize = 8;

/// Effort limits for [`SatAttack`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatAttackMode {
    /// Run the DIP loop to UNSAT: the recovered key is provably correct.
    Exact,
    /// AppSAT-style approximation with explicit budgets.
    Approximate {
        /// Maximum DIP iterations before forcing settlement.
        iteration_budget: usize,
        /// Conflict budget per DIP query; an exhausted query triggers
        /// settlement instead of an exactness proof.
        conflict_budget: u64,
        /// Random oracle queries used to validate each settled candidate.
        settlement_queries: usize,
        /// Maximum settle-validate-refine rounds before accepting the
        /// candidate key as the approximate answer.
        settlement_rounds: usize,
    },
}

/// Configuration of the SAT attack.
#[derive(Clone, Copy, Debug)]
pub struct SatAttackConfig {
    /// Exact or approximate operation.
    pub mode: SatAttackMode,
    /// Hard safety cap on DIP iterations (guards against a buggy oracle
    /// feeding inconsistent answers forever).
    pub max_iterations: usize,
    /// Seed for the random validation queries of the approximate mode.
    pub seed: u64,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            mode: SatAttackMode::Exact,
            max_iterations: 100_000,
            seed: 0x5A7,
        }
    }
}

impl SatAttackConfig {
    /// A reasonable approximate-mode preset: up to `iterations` DIPs,
    /// `conflicts` conflicts per query, 64 validation queries, 4 rounds.
    pub fn approximate(iterations: usize, conflicts: u64) -> Self {
        SatAttackConfig {
            mode: SatAttackMode::Approximate {
                iteration_budget: iterations,
                conflict_budget: conflicts,
                settlement_queries: 64,
                settlement_rounds: 4,
            },
            ..SatAttackConfig::default()
        }
    }
}

/// The oracle-guided SAT attack engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatAttack {
    config: SatAttackConfig,
}

impl SatAttack {
    /// An attack with the given configuration.
    pub fn new(config: SatAttackConfig) -> Self {
        SatAttack { config }
    }

    /// An exact attack (runs to the UNSAT proof).
    pub fn exact() -> Self {
        SatAttack::default()
    }

    /// Runs the DIP loop against `locked` (an AIG with key inputs at
    /// positions `key_start .. key_start + key_len`) using `oracle`.
    ///
    /// This is the engine entry point used by both the
    /// [`OracleGuidedAttack`] impl and direct callers (benches, examples).
    pub fn run(
        &self,
        locked: &almost_aig::Aig,
        key_start: usize,
        key_len: usize,
        oracle: &dyn BatchOracle,
    ) -> SatAttackRun {
        let started = Instant::now();
        let _span = almost_telemetry::span(almost_telemetry::Scope::Attack, || {
            format!("sat_attack k={key_len}")
        });
        // The oracle may have served other runs; report this run's delta.
        let queries_at_start = oracle.queries_served();
        let mut miter = KeyMiter::new(locked, key_start, key_len);
        assert_eq!(
            miter.num_data_inputs(),
            oracle.num_inputs(),
            "oracle arity must match the locked circuit's functional inputs"
        );
        let mut iterations: Vec<DipIteration> = Vec::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut settlement_rounds_used = 0usize;
        let mut proved_exact = false;
        let mut settled_candidate: Option<Vec<bool>> = None;
        // The attack's own oracle-query ledger; reconciled against the
        // oracle's served count before returning so per-iteration
        // accounting can never drift from the reported totals.
        let mut queries_issued = 0usize;

        let (conflict_budget, iteration_budget) = match self.config.mode {
            SatAttackMode::Exact => (None, usize::MAX),
            SatAttackMode::Approximate {
                iteration_budget,
                conflict_budget,
                ..
            } => (Some(conflict_budget), iteration_budget),
        };

        'outer: loop {
            if iterations.len() >= self.config.max_iterations {
                break;
            }
            let over_iteration_budget = miter.num_constraints() >= iteration_budget;
            let search = if over_iteration_budget {
                DipSearch::OutOfBudget
            } else {
                miter.find_dip(conflict_budget)
            };
            match search {
                DipSearch::Found(x) => {
                    let y = oracle.query(&x);
                    queries_issued += 1;
                    miter.constrain_io(&x, &y);
                    iterations.push(DipIteration {
                        dip_count: miter.num_constraints(),
                        conflicts: miter.solver_stats().conflicts,
                        oracle_queries: queries_issued,
                        settlement_mismatches: None,
                    });
                }
                DipSearch::Settled => {
                    proved_exact = true;
                    break;
                }
                DipSearch::OutOfBudget => {
                    // Approximate mode: settle a candidate and validate it
                    // with random queries; disagreements become ordinary
                    // I/O constraints.
                    let (queries, rounds) = match self.config.mode {
                        SatAttackMode::Approximate {
                            settlement_queries,
                            settlement_rounds,
                            ..
                        } => (settlement_queries, settlement_rounds),
                        SatAttackMode::Exact => {
                            unreachable!("exact mode never runs out of budget")
                        }
                    };
                    settlement_rounds_used += 1;
                    let candidate = match miter.settle_key() {
                        Some(k) => k,
                        None => break, // inconsistent oracle; report as-is
                    };
                    // Validate with one batched round of random queries —
                    // the oracle's batch path answers all of them in a
                    // handful of word-level sweeps — but cap the number of
                    // counterexamples re-encoded as constraints: each one
                    // adds two circuit residues to the solver, and an
                    // unbounded round can bury it (a half-wrong key fails
                    // ~half of all queries).
                    let xs: Vec<Vec<bool>> = (0..queries)
                        .map(|_| {
                            (0..miter.num_data_inputs())
                                .map(|_| rng.random::<bool>())
                                .collect()
                        })
                        .collect();
                    let ys = oracle.query_batch(&xs);
                    queries_issued += xs.len();
                    let got = eval_with_key_batch(locked, key_start, &candidate, &xs);
                    let mut mismatches = 0usize;
                    for ((x, y), g) in xs.iter().zip(&ys).zip(&got) {
                        if g != y {
                            mismatches += 1;
                            miter.constrain_io(x, y);
                            if mismatches >= MAX_SETTLEMENT_CONSTRAINTS {
                                break;
                            }
                        }
                    }
                    iterations.push(DipIteration {
                        dip_count: miter.num_constraints(),
                        conflicts: miter.solver_stats().conflicts,
                        oracle_queries: queries_issued,
                        settlement_mismatches: Some(mismatches),
                    });
                    if mismatches == 0 {
                        settled_candidate = Some(candidate);
                        break 'outer;
                    }
                    if settlement_rounds_used >= rounds {
                        break 'outer;
                    }
                }
            }
        }

        // A candidate that survived validation is the answer; otherwise
        // settle once against everything learnt so far.
        let recovered = settled_candidate
            .or_else(|| miter.settle_key())
            .unwrap_or_else(|| vec![false; key_len]);
        let run = SatAttackRun {
            recovered,
            proved_exact,
            iterations,
            oracle_queries: oracle.queries_served() - queries_at_start,
            runtime: started.elapsed(),
            solver: miter.solver_stats(),
            portfolio: miter.portfolio_stats(),
        };
        debug_assert_eq!(
            queries_issued, run.oracle_queries,
            "attack ledger must match the oracle's served count"
        );
        debug_assert!(run.accounting_consistent(), "DIP log reconciliation");
        run
    }
}

/// Raw result of [`SatAttack::run`] (unscored; no ground truth needed).
#[derive(Clone, Debug)]
pub struct SatAttackRun {
    /// The recovered key bits.
    pub recovered: Vec<bool>,
    /// True when the miter was proved UNSAT (exact recovery).
    pub proved_exact: bool,
    /// Per-iteration DIP log.
    pub iterations: Vec<DipIteration>,
    /// Oracle queries consumed.
    pub oracle_queries: usize,
    /// Wall-clock duration.
    pub runtime: std::time::Duration,
    /// Cumulative solver-effort counters of the attack's miter.
    pub solver: almost_sat::SolverStats,
    /// Portfolio racing counters (width 1 ⇒ zero races: the pinned
    /// serial reference ran). Telemetry-only — the CSV schema is
    /// unchanged so deterministic runs stay byte-identical.
    pub portfolio: almost_sat::PortfolioStats,
}

impl SatAttackRun {
    /// True when the per-iteration DIP log reconciles with the reported
    /// oracle query count — in *every* mode: an exact run has exactly one
    /// query per logged DIP iteration, an AppSAT run additionally
    /// reconciles each settlement round's validation queries and re-encoded
    /// mismatches (see [`dip_log_consistent`]).
    pub fn accounting_consistent(&self) -> bool {
        dip_log_consistent(&self.iterations, self.oracle_queries)
    }
}

/// Splices a candidate key into a functional input pattern at the locked
/// circuit's key-input offset.
fn splice_key(key_start: usize, key: &[bool], inputs: &[bool]) -> Vec<bool> {
    let mut full = Vec::with_capacity(inputs.len() + key.len());
    full.extend_from_slice(&inputs[..key_start]);
    full.extend_from_slice(key);
    full.extend_from_slice(&inputs[key_start..]);
    full
}

/// Evaluates the locked circuit under a candidate key on one input pattern.
fn eval_with_key(
    locked: &almost_aig::Aig,
    key_start: usize,
    key: &[bool],
    inputs: &[bool],
) -> Vec<bool> {
    locked.eval(&splice_key(key_start, key, inputs))
}

/// Batch form of [`eval_with_key`]: compiles the locked netlist once and
/// evaluates every spliced pattern through the word-level backend
/// (interpreting instead if the netlist is too large to compile).
fn eval_with_key_batch(
    locked: &almost_aig::Aig,
    key_start: usize,
    key: &[bool],
    inputs: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    match CompiledAig::compile(locked) {
        Ok(code) => {
            let full: Vec<Vec<bool>> = inputs
                .iter()
                .map(|x| splice_key(key_start, key, x))
                .collect();
            code.eval_batch(&full)
        }
        Err(_) => inputs
            .iter()
            .map(|x| eval_with_key(locked, key_start, key, x))
            .collect(),
    }
}

impl OracleGuidedAttack for SatAttack {
    fn name(&self) -> &'static str {
        match self.config.mode {
            SatAttackMode::Exact => "SAT",
            SatAttackMode::Approximate { .. } => "AppSAT",
        }
    }

    fn attack_with_oracle(
        &self,
        target: &AttackTarget,
        oracle: &dyn BatchOracle,
    ) -> OracleAttackOutcome {
        let locked = &target.deployed;
        let key_start = target.locked.key_input_start;
        let key_len = target.locked.key_size();
        let run = self.run(locked, key_start, key_len, oracle);
        score_oracle_run(
            self.name().to_string(),
            target,
            run.recovered,
            run.proved_exact,
            run.iterations,
            run.oracle_queries,
            run.runtime,
            run.solver,
            self.config.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{locked_oracle, locked_target};
    use almost_aig::Script;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{Oracle, Rll};
    use almost_sat::{check_equivalence, Equivalence};

    #[test]
    fn exact_attack_recovers_a_functionally_correct_key() {
        let (locked, oracle) = locked_oracle(&IscasBenchmark::C432.build(), &Rll::new(12), 1);
        let run = SatAttack::exact().run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.proved_exact, "exact mode must reach the UNSAT proof");
        let unlocked =
            almost_locking::apply_key(&locked.aig, locked.key_input_start, &run.recovered);
        assert_eq!(
            check_equivalence(oracle.design(), &unlocked),
            Equivalence::Equivalent,
            "recovered key must unlock the design"
        );
        assert!(run.oracle_queries >= run.iterations.len());
    }

    #[test]
    fn attack_works_through_the_trait_and_synthesis() {
        let (target, oracle) = locked_target(
            &IscasBenchmark::C432.build(),
            &Rll::new(10),
            Script::resyn2(),
            2,
        );
        let outcome = SatAttack::exact().attack_with_oracle(&target, &oracle);
        assert!(outcome.proved_exact);
        assert!(
            outcome.functionally_correct,
            "SAT attack defeats RLL even after synthesis"
        );
        assert!(!outcome.iterations.is_empty() || outcome.proved_exact);
    }

    #[test]
    fn approximate_mode_reports_per_iteration_dip_counts() {
        let (target, oracle) = locked_target(
            &IscasBenchmark::C432.build(),
            &Rll::new(12),
            Script::resyn2(),
            3,
        );
        let attack = SatAttack::new(SatAttackConfig::approximate(3, 50));
        let outcome = attack.attack_with_oracle(&target, &oracle);
        assert_eq!(outcome.attack, "AppSAT");
        let counts = outcome.dip_counts();
        assert!(!counts.is_empty(), "iteration log must not be empty");
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "DIP counts are cumulative"
        );
        // Settlement entries carry a mismatch count.
        assert!(
            outcome
                .iterations
                .iter()
                .any(|it| it.settlement_mismatches.is_some())
                || outcome.proved_exact,
            "a budgeted run either settles or finishes exactly"
        );
    }

    #[test]
    fn iteration_accounting_reconciles_in_exact_mode() {
        let (locked, oracle) = locked_oracle(&IscasBenchmark::C432.build(), &Rll::new(10), 5);
        let run = SatAttack::exact().run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.accounting_consistent());
        // Exact mode issues exactly one oracle query per logged iteration.
        assert_eq!(run.oracle_queries, run.iterations.len());
        assert_eq!(run.oracle_queries, oracle.queries_served());
        // A drifted log must be rejected (this is the regression the
        // audit exists to catch: a query issued but not logged).
        if let Some(mut drifted) = Some(run.clone()) {
            drifted.oracle_queries += 1;
            assert!(!drifted.accounting_consistent());
        }
    }

    #[test]
    fn iteration_accounting_reconciles_in_approximate_mode() {
        let (locked, oracle) = locked_oracle(&IscasBenchmark::C432.build(), &Rll::new(12), 6);
        let attack = SatAttack::new(SatAttackConfig::approximate(3, 50));
        let run = attack.run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.accounting_consistent());
        assert_eq!(run.oracle_queries, oracle.queries_served());
        // Settlement rounds issue validation queries beyond the DIP count;
        // the per-iteration cumulative column must absorb all of them.
        let logged = run.iterations.last().map_or(0, |it| it.oracle_queries);
        assert_eq!(logged, run.oracle_queries);
        // And the DIP ledger itself: one per DIP iteration plus exactly
        // the re-encoded mismatches of each settlement round.
        let expected_dips: usize = run
            .iterations
            .iter()
            .map(|it| it.settlement_mismatches.unwrap_or(1))
            .sum();
        assert_eq!(
            run.iterations.last().map_or(0, |it| it.dip_count),
            expected_dips
        );
    }

    #[test]
    fn eval_with_key_splices_at_the_key_offset() {
        let locked = crate::testutil::lock_with(&IscasBenchmark::C432.build(), &Rll::new(4), 4);
        let inputs = vec![true; locked.aig.num_inputs() - 4];
        let full = eval_with_key(
            &locked.aig,
            locked.key_input_start,
            locked.key.bits(),
            &inputs,
        );
        let mut expect = inputs.clone();
        // Keys occupy positions key_input_start.. in the locked circuit.
        for (offset, &bit) in locked.key.bits().iter().enumerate() {
            expect.insert(locked.key_input_start + offset, bit);
        }
        let direct = locked.aig.eval(&expect);
        assert_eq!(full, direct);
    }
}
