//! The Double-DIP attack [Shen & Zhou, GLSVLSI'17] on SAT-resilient
//! locking.
//!
//! Point-function defences (SARLock, Anti-SAT) survive the classical SAT
//! attack by making every distinguishing input pattern eliminate only one
//! wrong key, forcing `2^k` oracle queries. Double DIP refuses to play:
//! its miter ([`almost_sat::DoubleDipMiter`]) only accepts *2-DIPs* —
//! inputs whose oracle answer is guaranteed to kill at least two wrong
//! keys, because two distinct agreeing keys sit on each side of the
//! disagreement. One-key-per-input flips can never fill a pair, so the
//! loop spends its queries resolving the base scheme (RLL, MuxLock) under
//! the point function and settles in roughly the base's DIP count.
//!
//! The settled key is *approximately* correct: exact up to inputs where a
//! single surviving key class errs — i.e. the stripped point function's
//! one flip pattern. That is precisely the trade SARLock's threat model
//! conceded, and why the literature pairs Double DIP with removal attacks
//! to finish the job.

use crate::report::{
    dip_log_consistent, score_oracle_run, AttackTarget, DipIteration, OracleAttackOutcome,
    OracleGuidedAttack,
};
use almost_aig::CompiledAig;
use almost_locking::BatchOracle;
use almost_sat::double_dip::{DoubleDipMiter, TwoDipSearch};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Configuration of the Double-DIP attack.
#[derive(Clone, Copy, Debug)]
pub struct DoubleDipConfig {
    /// Hard cap on 2-DIP iterations (a converging run on a stacked lock
    /// settles in roughly the base scheme's DIP count).
    pub max_iterations: usize,
    /// Optional conflict budget per 2-DIP query; exhaustion ends the loop
    /// with the current candidate (the defence winning on solver effort).
    pub conflict_budget: Option<u64>,
    /// Random pair-agreement probes encoded into the miter (see
    /// [`almost_sat::DoubleDipMiter::with_probes`]): they force pair
    /// members to be near-equivalent keys, which keeps the loop killing
    /// wrong *base* keys instead of enumerating point-function flip
    /// cylinders. Structural only — no oracle queries.
    pub probes: usize,
    /// Seed for probe generation and scoring simulation.
    pub seed: u64,
}

impl Default for DoubleDipConfig {
    fn default() -> Self {
        DoubleDipConfig {
            max_iterations: 4096,
            conflict_budget: None,
            probes: 12,
            seed: 0x2D1F,
        }
    }
}

/// The Double-DIP attack engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoubleDip {
    config: DoubleDipConfig,
}

impl DoubleDip {
    /// An attack with the given configuration.
    pub fn new(config: DoubleDipConfig) -> Self {
        DoubleDip { config }
    }

    /// An unbudgeted attack (runs the 2-DIP loop to its UNSAT proof).
    pub fn exact() -> Self {
        DoubleDip::default()
    }

    /// A budgeted attack: at most `iterations` 2-DIPs, `conflicts`
    /// conflicts per query.
    pub fn budgeted(iterations: usize, conflicts: u64) -> Self {
        DoubleDip::new(DoubleDipConfig {
            max_iterations: iterations,
            conflict_budget: Some(conflicts),
            ..DoubleDipConfig::default()
        })
    }

    /// Runs the 2-DIP loop against `locked` (an AIG with key inputs at
    /// positions `key_start .. key_start + key_len`) using `oracle`.
    pub fn run(
        &self,
        locked: &almost_aig::Aig,
        key_start: usize,
        key_len: usize,
        oracle: &dyn BatchOracle,
    ) -> DoubleDipRun {
        let started = Instant::now();
        let _span = almost_telemetry::span(almost_telemetry::Scope::Attack, || {
            format!("double_dip k={key_len}")
        });
        let queries_at_start = oracle.queries_served();
        let num_data = locked.num_inputs() - key_len;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let probes: Vec<Vec<bool>> = (0..self.config.probes)
            .map(|_| (0..num_data).map(|_| rng.random::<bool>()).collect())
            .collect();
        let mut miter = DoubleDipMiter::with_probes(locked, key_start, key_len, &probes);
        assert_eq!(
            miter.num_data_inputs(),
            oracle.num_inputs(),
            "oracle arity must match the locked circuit's functional inputs"
        );
        let mut iterations: Vec<DipIteration> = Vec::new();
        let mut queries_issued = 0usize;
        let mut two_dip_settled = false;

        loop {
            if iterations.len() >= self.config.max_iterations {
                break;
            }
            match miter.find_2dip(self.config.conflict_budget) {
                TwoDipSearch::Found(x) => {
                    let y = oracle.query(&x);
                    queries_issued += 1;
                    miter.constrain_io(&x, &y);
                    iterations.push(DipIteration {
                        dip_count: miter.num_constraints(),
                        conflicts: miter.solver_stats().conflicts,
                        oracle_queries: queries_issued,
                        settlement_mismatches: None,
                    });
                }
                TwoDipSearch::Settled => {
                    two_dip_settled = true;
                    break;
                }
                TwoDipSearch::OutOfBudget => break,
            }
        }

        let recovered = miter.settle_key().unwrap_or_else(|| vec![false; key_len]);
        let key_sensitive_probes =
            count_key_sensitive_probes(locked, key_start, key_len, &probes, self.config.seed);
        let run = DoubleDipRun {
            recovered,
            two_dip_settled,
            key_sensitive_probes,
            iterations,
            oracle_queries: oracle.queries_served() - queries_at_start,
            runtime: started.elapsed(),
            solver: miter.solver_stats(),
            portfolio: miter.portfolio_stats(),
        };
        debug_assert_eq!(
            queries_issued, run.oracle_queries,
            "attack ledger must match the oracle's served count"
        );
        debug_assert!(run.accounting_consistent(), "DIP log reconciliation");
        run
    }
}

/// Counts probes whose outputs vary across 64 random keys, evaluated in
/// a single word-level sweep of the compiled locked netlist: each probe
/// occupies one word column with its data bits broadcast, key inputs
/// carry a random bit per lane, and a probe is key sensitive when some
/// output word is neither all-zeros nor all-ones. Falls back to zero if
/// the netlist cannot be compiled (the diagnostic is best-effort).
fn count_key_sensitive_probes(
    locked: &almost_aig::Aig,
    key_start: usize,
    key_len: usize,
    probes: &[Vec<bool>],
    seed: u64,
) -> usize {
    if probes.is_empty() {
        return 0;
    }
    let Ok(code) = CompiledAig::compile(locked) else {
        return 0;
    };
    // A distinct stream from the probe RNG: the probes themselves must
    // not move when this diagnostic changes its sampling.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_D1D1_2D2D);
    let num_words = probes.len();
    let mut words: Vec<Vec<u64>> = Vec::with_capacity(locked.num_inputs());
    let mut data_pos = 0usize;
    for pos in 0..locked.num_inputs() {
        if pos >= key_start && pos < key_start + key_len {
            words.push(vec![rng.random::<u64>(); num_words]);
        } else {
            words.push(
                probes
                    .iter()
                    .map(|p| (p[data_pos] as u64).wrapping_neg())
                    .collect(),
            );
            data_pos += 1;
        }
    }
    let out = code.eval_words(&words, num_words);
    (0..num_words)
        .filter(|&w| out.iter().any(|o| o[w] != 0 && o[w] != u64::MAX))
        .count()
}

/// Raw result of [`DoubleDip::run`] (unscored; no ground truth needed).
#[derive(Clone, Debug)]
pub struct DoubleDipRun {
    /// The recovered key bits — correct up to inputs where only a single
    /// key class errs (the stripped point function).
    pub recovered: Vec<bool>,
    /// True when the 2-DIP miter was proved UNSAT: no input remains whose
    /// answer could eliminate two keys, so the base scheme is resolved.
    pub two_dip_settled: bool,
    /// How many of the structural pair-agreement probes are *key
    /// sensitive* — their output actually varies across random keys (one
    /// word-level sweep of the compiled locked netlist, no oracle
    /// queries). On a pure point-function lock this is ~0 (each probe
    /// upsets at most a measure-zero key slice); on RLL-style bases it
    /// approaches the probe count — a cheap diagnostic for which regime
    /// the attack is in.
    pub key_sensitive_probes: usize,
    /// Per-iteration 2-DIP log (each entry consumed one oracle query).
    pub iterations: Vec<DipIteration>,
    /// Oracle queries consumed.
    pub oracle_queries: usize,
    /// Wall-clock duration.
    pub runtime: std::time::Duration,
    /// Cumulative solver-effort counters of the attack's miter.
    pub solver: almost_sat::SolverStats,
    /// Portfolio racing counters (width 1 ⇒ zero races: the pinned
    /// serial reference ran). Telemetry-only — the CSV schema is
    /// unchanged so deterministic runs stay byte-identical.
    pub portfolio: almost_sat::PortfolioStats,
}

impl DoubleDipRun {
    /// Total 2-DIPs found.
    pub fn dip_count(&self) -> usize {
        self.iterations.last().map_or(0, |it| it.dip_count)
    }

    /// True when the per-iteration log reconciles with the reported
    /// oracle query count (see
    /// [`dip_log_consistent`](crate::report::dip_log_consistent)).
    pub fn accounting_consistent(&self) -> bool {
        dip_log_consistent(&self.iterations, self.oracle_queries)
    }
}

impl OracleGuidedAttack for DoubleDip {
    fn name(&self) -> &'static str {
        "DoubleDIP"
    }

    fn attack_with_oracle(
        &self,
        target: &AttackTarget,
        oracle: &dyn BatchOracle,
    ) -> OracleAttackOutcome {
        let run = self.run(
            &target.deployed,
            target.locked.key_input_start,
            target.locked.key_size(),
            oracle,
        );
        // `proved_exact` stays false: a settled 2-DIP loop proves the key
        // correct only up to one-key flip patterns, and the shared CEC
        // scoring will honestly report `functionally_correct = false` when
        // a stripped point function still disagrees on its flip input.
        score_oracle_run(
            self.name().to_string(),
            target,
            run.recovered,
            false,
            run.iterations,
            run.oracle_queries,
            run.runtime,
            run.solver,
            self.config.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::locked_oracle;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{apply_key, Oracle, Rll, SarLock, Stacked};

    #[test]
    fn double_dip_terminates_early_on_plain_rll() {
        // Plain RLL has a bitwise-unique correct key, so once the live set
        // thins out a side of the 2-DIP miter can no longer field two
        // distinct keys and the loop settles *early* — Double DIP trades
        // exactness for resilience-stripping, which is why the classic
        // attack remains the right tool for unprotected RLL. What must
        // hold: termination well under the classic DIP budget, and a
        // reconciled query ledger.
        let (locked, oracle) = locked_oracle(&IscasBenchmark::C432.build(), &Rll::new(8), 61);
        let run = DoubleDip::exact().run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.two_dip_settled);
        assert!(run.accounting_consistent());
        assert!(
            run.oracle_queries < 256,
            "2-DIP count stays far below key exhaustion (got {})",
            run.oracle_queries
        );
        assert_eq!(run.recovered.len(), 8);
        // RLL key gates sit on live signals: random probes see the key.
        assert!(
            run.key_sensitive_probes > 0,
            "RLL probes must show key sensitivity"
        );
    }

    #[test]
    fn sarlock_alone_settles_immediately_with_zero_queries() {
        // Pure SARLock: every input incriminates at most one key, so no
        // 2-DIP ever exists — the defence never extracts a single query.
        let (locked, oracle) = locked_oracle(&IscasBenchmark::C432.build(), &SarLock::new(8), 62);
        let run = DoubleDip::exact().run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.two_dip_settled);
        assert_eq!(run.oracle_queries, 0);
        assert_eq!(
            oracle.queries_served(),
            0,
            "the probe diagnostic must not touch the oracle"
        );
        assert!(run.accounting_consistent());
        // A pure point function flips only when a key lane matches the
        // probe's 8-bit prefix: each of the 64 lanes hits with
        // probability 2^-8, so ~22% of probes register — far below the
        // near-total sensitivity RLL shows above.
        assert!(
            run.key_sensitive_probes <= 6,
            "SARLock probes mostly key-insensitive (got {} of 12)",
            run.key_sensitive_probes
        );
    }

    #[test]
    fn strips_sarlock_and_recovers_the_rll_base_key() {
        let design = IscasBenchmark::C432.build();
        let (locked, oracle) =
            locked_oracle(&design, &Stacked::new(Rll::new(10), SarLock::new(8)), 63);
        let run = DoubleDip::exact().run(
            &locked.aig,
            locked.key_input_start,
            locked.key_size(),
            &oracle,
        );
        assert!(run.two_dip_settled, "2-DIP loop must converge");
        assert!(
            run.dip_count() < 256,
            "far fewer queries than the 2^8 SARLock floor (got {})",
            run.dip_count()
        );
        // The base key is recovered exactly: overwrite the overlay bits
        // with ground truth and the circuit must unlock end to end.
        let mut key = run.recovered.clone();
        key[10..].copy_from_slice(&locked.key.bits()[10..]);
        let restored = apply_key(&locked.aig, locked.key_input_start, &key);
        assert_eq!(
            almost_sat::check_equivalence(&design, &restored),
            almost_sat::Equivalence::Equivalent,
            "recovered base key + true overlay must unlock the design"
        );
    }
}
