//! Key-gate locality extraction: the enclosing subgraphs OMLA classifies.
//!
//! After synthesis the inserted XOR/XNOR key gates are dissolved into the
//! AIG, but the *key inputs* are interface-stable. A locality is the
//! h-hop undirected neighbourhood of a key-input node; node features
//! describe gate kind, fanin complementation (where the XOR-vs-XNOR signal
//! survives bubble pushing), fanout and distance — the information OMLA's
//! GNN learns from.
//!
//! Optionally the structural features are augmented with *functional
//! signatures* — per-node signal probability and switching activity from
//! one word-level sweep of the compiled netlist ([`SignalSignatures`],
//! backed by `almost_aig::compile`). Signature extraction is opt-in
//! (`extract_all_localities_with_signatures`) so the default feature
//! layout, and every model trained on it, is unchanged.

use almost_aig::{Aig, CompiledAig, NodeKind, Var};
use almost_ml::gin::Graph;
use almost_ml::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Locality-extraction parameters.
#[derive(Clone, Copy, Debug)]
pub struct SubgraphConfig {
    /// Neighbourhood radius in hops (undirected).
    pub hops: usize,
    /// Hard cap on subgraph size (BFS order keeps the closest nodes).
    pub max_nodes: usize,
}

impl Default for SubgraphConfig {
    fn default() -> Self {
        SubgraphConfig {
            hops: 3,
            max_nodes: 40,
        }
    }
}

/// Number of per-node features produced by the extractor.
pub const NUM_FEATURES: usize = 11;

/// Feature width when functional signatures are appended (probability
/// and switching activity).
pub const NUM_SIGNATURE_FEATURES: usize = NUM_FEATURES + 2;

/// Per-node functional signatures from one word-level batch sweep of the
/// compiled netlist: the signal probability of every output-reachable
/// node under `64 * num_words` random patterns. Computed once per
/// netlist and shared across all localities extracted from it.
pub struct SignalSignatures {
    probs: Vec<f32>,
}

impl SignalSignatures {
    /// Simulates `aig` on `64 * num_words` random patterns through the
    /// compiled batch evaluator. Nodes outside the output cone (which
    /// the compiler skips) get the maximum-uncertainty value 0.5.
    pub fn compute(aig: &Aig, num_words: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let input_words: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|_| (0..num_words).map(|_| rng.random()).collect())
            .collect();
        let mut probs = vec![0.5f32; aig.num_nodes()];
        if let Ok(code) = CompiledAig::compile(aig) {
            let ones = code.register_popcounts(&input_words, num_words);
            let patterns = (num_words * 64) as u64;
            for v in aig.iter_vars() {
                if let Some(r) = code.register_of(v) {
                    probs[v as usize] =
                        almost_ml::data::signal_probability(ones[r as usize], patterns);
                }
            }
        }
        SignalSignatures { probs }
    }

    /// Signal probability of node `var` (0.5 for uncompiled nodes).
    pub fn probability(&self, var: Var) -> f32 {
        self.probs.get(var as usize).copied().unwrap_or(0.5)
    }

    /// Switching activity `2p(1-p)` of node `var`.
    pub fn activity(&self, var: Var) -> f32 {
        almost_ml::data::switching_activity(self.probability(var))
    }
}

/// Extracts the locality subgraph of the key input at input position
/// `key_input_pos`, labelled with `label`.
///
/// # Panics
///
/// Panics if `key_input_pos` is out of range.
pub fn extract_locality(
    aig: &Aig,
    fanouts: &[Vec<Var>],
    key_input_positions: &[usize],
    key_input_pos: usize,
    label: bool,
    config: &SubgraphConfig,
) -> Graph {
    extract_locality_inner(
        aig,
        fanouts,
        key_input_positions,
        key_input_pos,
        label,
        config,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn extract_locality_inner(
    aig: &Aig,
    fanouts: &[Vec<Var>],
    key_input_positions: &[usize],
    key_input_pos: usize,
    label: bool,
    config: &SubgraphConfig,
    signatures: Option<&SignalSignatures>,
) -> Graph {
    let center = aig.inputs()[key_input_pos];
    let key_vars: std::collections::HashSet<Var> = key_input_positions
        .iter()
        .map(|&p| aig.inputs()[p])
        .collect();

    // BFS out to `hops`, collecting nodes in distance order.
    let mut dist: HashMap<Var, usize> = HashMap::new();
    let mut order: Vec<Var> = Vec::new();
    let mut queue = VecDeque::new();
    dist.insert(center, 0);
    queue.push_back(center);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        order.push(v);
        if order.len() >= config.max_nodes || d >= config.hops {
            continue;
        }
        let mut neighbours: Vec<Var> = Vec::new();
        if let NodeKind::And(a, b) = aig.node(v) {
            neighbours.push(a.var());
            neighbours.push(b.var());
        }
        neighbours.extend(fanouts[v as usize].iter().copied());
        for n in neighbours {
            if n != 0 && !dist.contains_key(&n) {
                dist.insert(n, d + 1);
                queue.push_back(n);
            }
        }
    }
    order.truncate(config.max_nodes);
    let index: HashMap<Var, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Edges within the subgraph (undirected, deduplicated by from<to).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (&v, &i) in &index {
        if let NodeKind::And(a, b) = aig.node(v) {
            for f in [a.var(), b.var()] {
                if let Some(&j) = index.get(&f) {
                    if i < j {
                        edges.push((i, j));
                    } else {
                        edges.push((j, i));
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Node features.
    let width = if signatures.is_some() {
        NUM_SIGNATURE_FEATURES
    } else {
        NUM_FEATURES
    };
    let mut features = Matrix::zeros(order.len(), width);
    for (i, &v) in order.iter().enumerate() {
        let node = aig.node(v);
        let is_center = v == center;
        let is_key = key_vars.contains(&v);
        features.set(i, 0, is_center as u8 as f32);
        features.set(i, 1, (is_key && !is_center) as u8 as f32);
        match node {
            NodeKind::Input(_) => {
                if !is_key {
                    features.set(i, 2, 1.0);
                }
            }
            NodeKind::And(a, b) => {
                features.set(i, 3, 1.0);
                let compl = a.is_complement() as usize + b.is_complement() as usize;
                features.set(i, 4 + compl, 1.0);
            }
            NodeKind::Const0 => {}
        }
        let fo = fanouts[v as usize].len() as f32;
        features.set(i, 7, (1.0 + fo).ln() / 3.0);
        features.set(i, 8, dist[&v] as f32 / config.hops.max(1) as f32);
        // Fraction of fanout edges that consume this node complemented.
        let mut compl_out = 0usize;
        for &fo_node in &fanouts[v as usize] {
            if let NodeKind::And(a, b) = aig.node(fo_node) {
                if (a.var() == v && a.is_complement()) || (b.var() == v && b.is_complement()) {
                    compl_out += 1;
                }
            }
        }
        if !fanouts[v as usize].is_empty() {
            features.set(i, 9, compl_out as f32 / fanouts[v as usize].len() as f32);
        }
        features.set(i, 10, 1.0);
        if let Some(sigs) = signatures {
            features.set(i, 11, sigs.probability(v));
            features.set(i, 12, sigs.activity(v));
        }
    }

    Graph::from_edges(order.len(), &edges, features, label)
}

/// Extracts the localities of all listed key inputs at once.
///
/// `labels[i]` is the key bit of `key_input_positions[i]`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn extract_all_localities(
    aig: &Aig,
    key_input_positions: &[usize],
    labels: &[bool],
    config: &SubgraphConfig,
) -> Vec<Graph> {
    extract_all_localities_opt(aig, key_input_positions, labels, config, None)
}

/// Like [`extract_all_localities`], but appends the two functional
/// signature features (signal probability, switching activity) to every
/// node — feature width [`NUM_SIGNATURE_FEATURES`]. `signatures` must
/// come from [`SignalSignatures::compute`] on the *same* netlist.
pub fn extract_all_localities_with_signatures(
    aig: &Aig,
    key_input_positions: &[usize],
    labels: &[bool],
    config: &SubgraphConfig,
    signatures: &SignalSignatures,
) -> Vec<Graph> {
    extract_all_localities_opt(aig, key_input_positions, labels, config, Some(signatures))
}

fn extract_all_localities_opt(
    aig: &Aig,
    key_input_positions: &[usize],
    labels: &[bool],
    config: &SubgraphConfig,
    signatures: Option<&SignalSignatures>,
) -> Vec<Graph> {
    assert_eq!(key_input_positions.len(), labels.len());
    let fanouts = aig.fanouts();
    key_input_positions
        .iter()
        .zip(labels)
        .map(|(&pos, &label)| {
            extract_locality_inner(
                aig,
                &fanouts,
                key_input_positions,
                pos,
                label,
                config,
                signatures,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_circuits::IscasBenchmark;
    use almost_locking::{LockingScheme, Rll};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn locality_contains_the_center() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(8).lock(&base, &mut rng).expect("lockable");
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let graphs = extract_all_localities(
            &locked.aig,
            &positions,
            locked.key.bits(),
            &SubgraphConfig::default(),
        );
        assert_eq!(graphs.len(), 8);
        for g in &graphs {
            assert!(g.num_nodes() >= 2, "locality must include neighbours");
            // Exactly one center flag.
            let centers: f32 = (0..g.num_nodes()).map(|i| g.features.get(i, 0)).sum();
            assert_eq!(centers, 1.0);
        }
    }

    #[test]
    fn labels_match_key_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(16).lock(&base, &mut rng).expect("lockable");
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let graphs = extract_all_localities(
            &locked.aig,
            &positions,
            locked.key.bits(),
            &SubgraphConfig::default(),
        );
        for (g, &bit) in graphs.iter().zip(locked.key.bits()) {
            assert_eq!(g.label, bit);
        }
    }

    #[test]
    fn respects_max_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = IscasBenchmark::C1355.build();
        let locked = Rll::new(4).lock(&base, &mut rng).expect("lockable");
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let cfg = SubgraphConfig {
            hops: 6,
            max_nodes: 12,
        };
        for g in extract_all_localities(&locked.aig, &positions, locked.key.bits(), &cfg) {
            assert!(g.num_nodes() <= 12);
        }
    }

    #[test]
    fn signatures_match_the_node_walk_simulator() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(8).lock(&base, &mut rng).expect("lockable");
        let num_words = 4;
        let seed = 99;
        let sigs = SignalSignatures::compute(&locked.aig, num_words, seed);
        // Rebuild the exact input words SignalSignatures drew, then
        // compare against the interpreted simulator on the same stimulus.
        let mut word_rng = StdRng::seed_from_u64(seed);
        let input_words: Vec<Vec<u64>> = (0..locked.aig.num_inputs())
            .map(|_| (0..num_words).map(|_| word_rng.random()).collect())
            .collect();
        let vectors = almost_aig::sim::SimVectors::with_input_patterns(&locked.aig, &input_words);
        let code = CompiledAig::compile(&locked.aig).expect("compilable");
        for v in locked.aig.iter_vars() {
            let got = sigs.probability(v);
            if code.register_of(v).is_some() {
                let want = vectors.signal_probability(v) as f32;
                assert!(
                    (got - want).abs() < 1e-6,
                    "var {v}: compiled prob {got} vs simulated {want}"
                );
            } else {
                assert_eq!(got, 0.5, "uncompiled var {v} must stay neutral");
            }
        }
    }

    #[test]
    fn signature_features_widen_the_matrix() {
        let mut rng = StdRng::seed_from_u64(6);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(4).lock(&base, &mut rng).expect("lockable");
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let sigs = SignalSignatures::compute(&locked.aig, 2, 7);
        let graphs = extract_all_localities_with_signatures(
            &locked.aig,
            &positions,
            locked.key.bits(),
            &SubgraphConfig::default(),
            &sigs,
        );
        assert_eq!(graphs[0].features.cols(), NUM_SIGNATURE_FEATURES);
        for g in &graphs {
            for i in 0..g.num_nodes() {
                let p = g.features.get(i, 11);
                let a = g.features.get(i, 12);
                assert!((0.0..=1.0).contains(&p));
                assert!((a - almost_ml::data::switching_activity(p)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn features_have_expected_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(4).lock(&base, &mut rng).expect("lockable");
        let positions: Vec<usize> = locked.key_input_positions().collect();
        let graphs = extract_all_localities(
            &locked.aig,
            &positions,
            locked.key.bits(),
            &SubgraphConfig::default(),
        );
        assert_eq!(graphs[0].features.cols(), NUM_FEATURES);
    }
}
