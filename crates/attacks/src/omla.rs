//! The OMLA attack: oracle-less key recovery with a GIN subgraph
//! classifier (Alrahis et al., IEEE TCAS-II 2022).
//!
//! OMLA is *self-referencing*: the attacker re-locks the deployed netlist
//! with additional key gates whose bits they chose themselves, re-applies
//! the defender's synthesis recipe, and extracts the new key-gates'
//! localities as labelled training data. The trained classifier is then
//! applied to the victim key-inputs' localities.

use crate::report::{AttackOutcome, AttackTarget, OracleLessAttack};
use crate::subgraph::{
    extract_all_localities, extract_all_localities_with_signatures, SignalSignatures,
    SubgraphConfig, NUM_FEATURES, NUM_SIGNATURE_FEATURES,
};
use almost_aig::{Aig, Script};
use almost_locking::{relock, Rll};
use almost_ml::gin::{GinClassifier, Graph};
use almost_ml::tape::Tape;
use almost_ml::train::{train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// OMLA attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct OmlaConfig {
    /// GIN hidden width.
    pub hidden: usize,
    /// Number of GIN rounds.
    pub layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Key gates inserted per re-lock round.
    pub relock_key_size: usize,
    /// Number of labelled localities to manufacture.
    pub training_samples: usize,
    /// Locality shape.
    pub subgraph: SubgraphConfig,
    /// Append per-node functional signatures (signal probability and
    /// switching activity from a compiled batch sweep) to the structural
    /// features. Off by default: the baseline feature layout — and any
    /// model trained on it — is unchanged unless explicitly requested.
    pub functional_signatures: bool,
    /// RNG seed (re-locking + training shuffle + init).
    pub seed: u64,
}

impl Default for OmlaConfig {
    fn default() -> Self {
        OmlaConfig {
            hidden: 24,
            layers: 2,
            epochs: 60,
            batch_size: 32,
            learning_rate: 5e-3,
            relock_key_size: 32,
            training_samples: 512,
            subgraph: SubgraphConfig::default(),
            functional_signatures: false,
            seed: 0xA77AC4,
        }
    }
}

/// The OMLA attack.
#[derive(Clone, Debug, Default)]
pub struct Omla {
    /// Attack configuration.
    pub config: OmlaConfig,
}

/// Random 64-bit words per input for signature sweeps (256 patterns).
const SIGNATURE_WORDS: usize = 4;

impl Omla {
    /// An OMLA attacker with the given configuration.
    pub fn new(config: OmlaConfig) -> Self {
        Omla { config }
    }

    /// Per-node feature width implied by the configuration.
    pub fn feature_width(&self) -> usize {
        if self.config.functional_signatures {
            NUM_SIGNATURE_FEATURES
        } else {
            NUM_FEATURES
        }
    }

    /// Locality extraction honouring `functional_signatures`: one compiled
    /// batch sweep per netlist when signatures are on.
    fn extract(&self, aig: &Aig, positions: &[usize], labels: &[bool]) -> Vec<Graph> {
        if self.config.functional_signatures {
            let sigs = SignalSignatures::compute(aig, SIGNATURE_WORDS, self.config.seed ^ 0x516);
            extract_all_localities_with_signatures(
                aig,
                positions,
                labels,
                &self.config.subgraph,
                &sigs,
            )
        } else {
            extract_all_localities(aig, positions, labels, &self.config.subgraph)
        }
    }

    /// Manufactures labelled training localities by re-locking `deployed`
    /// and re-synthesising with `recipe` (the self-referencing protocol).
    pub fn generate_training_data(
        &self,
        deployed: &Aig,
        recipe: &Script,
        rng: &mut StdRng,
    ) -> Vec<Graph> {
        let mut data = Vec::with_capacity(self.config.training_samples);
        let scheme = Rll::new(self.config.relock_key_size);
        while data.len() < self.config.training_samples {
            let Ok(relocked) = relock(&scheme, deployed, rng) else {
                break; // circuit too small to relock further
            };
            let resynth = recipe.apply(&relocked.aig);
            let positions: Vec<usize> = relocked.key_input_positions().collect();
            let graphs = self.extract(&resynth, &positions, relocked.key.bits());
            data.extend(graphs);
        }
        data.truncate(self.config.training_samples);
        data
    }

    /// Trains a classifier on manufactured data for the given deployment.
    pub fn train_model(&self, deployed: &Aig, recipe: &Script) -> GinClassifier {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let data = self.generate_training_data(deployed, recipe, &mut rng);
        let mut model = GinClassifier::new(
            self.feature_width(),
            self.config.hidden,
            self.config.layers,
            self.config.seed,
        );
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: self.config.epochs,
                batch_size: self.config.batch_size,
                learning_rate: self.config.learning_rate,
                seed: self.config.seed ^ 0x5eed,
            },
        );
        model
    }

    /// Applies a trained model to the victim key inputs of a deployed
    /// netlist; returns per-bit probabilities that each bit is 1.
    pub fn predict_bits(
        &self,
        model: &GinClassifier,
        deployed: &Aig,
        key_positions: &[usize],
    ) -> Vec<f32> {
        let dummy_labels = vec![false; key_positions.len()];
        let graphs = self.extract(deployed, key_positions, &dummy_labels);
        // One reused tape across the key bits: prediction allocates
        // nothing after the first locality.
        let mut tape = Tape::new();
        graphs
            .iter()
            .map(|g| model.predict_with(&mut tape, g))
            .collect()
    }

    /// Full evaluation path used by the ALMOST framework: accuracy of
    /// `model` against the true key of `target`.
    pub fn evaluate_model(&self, model: &GinClassifier, target: &AttackTarget) -> f64 {
        let probs = self.predict_bits(model, &target.deployed, &target.key_positions());
        let predicted: Vec<Option<bool>> = probs.iter().map(|&p| Some(p >= 0.5)).collect();
        AttackOutcome::score("OMLA", predicted, target.locked.key.bits()).accuracy
    }
}

impl OracleLessAttack for Omla {
    fn name(&self) -> &'static str {
        "OMLA"
    }

    fn attack(&self, target: &AttackTarget) -> AttackOutcome {
        let model = self.train_model(&target.deployed, &target.recipe);
        let probs = self.predict_bits(&model, &target.deployed, &target.key_positions());
        let predicted: Vec<Option<bool>> = probs.iter().map(|&p| Some(p >= 0.5)).collect();
        AttackOutcome::score("OMLA", predicted, target.locked.key.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use almost_circuits::IscasBenchmark;
    use almost_locking::LockingScheme;

    fn quick_config() -> OmlaConfig {
        OmlaConfig {
            hidden: 12,
            layers: 2,
            epochs: 25,
            batch_size: 32,
            learning_rate: 8e-3,
            relock_key_size: 24,
            training_samples: 144,
            subgraph: SubgraphConfig {
                hops: 3,
                max_nodes: 32,
            },
            functional_signatures: false,
            seed: 7,
        }
    }

    #[test]
    fn training_data_is_labelled_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(16).lock(&base, &mut rng).expect("lockable");
        let omla = Omla::new(quick_config());
        let mut rng2 = StdRng::seed_from_u64(2);
        let data = omla.generate_training_data(&locked.aig, &Script::resyn2(), &mut rng2);
        assert_eq!(data.len(), 144);
        let positives = data.iter().filter(|g| g.label).count();
        assert!(
            positives > 30 && positives < 114,
            "labels are mixed: {positives}"
        );
    }

    #[test]
    fn omla_beats_chance_on_unsynthesised_locking() {
        // Without any synthesis (empty recipe), XOR vs XNOR key gates are
        // structurally obvious; OMLA must get well above 50%.
        let mut rng = StdRng::seed_from_u64(3);
        let base = IscasBenchmark::C880.build();
        let locked = Rll::new(32).lock(&base, &mut rng).expect("lockable");
        let target = AttackTarget::new(locked, Script::new());
        let outcome = Omla::new(quick_config()).attack(&target);
        assert!(
            outcome.accuracy > 0.7,
            "expected strong recovery on raw locking, got {}",
            outcome.accuracy
        );
    }

    #[test]
    fn functional_signatures_widen_training_data_and_predictions() {
        let config = OmlaConfig {
            functional_signatures: true,
            training_samples: 48,
            ..quick_config()
        };
        let omla = Omla::new(config);
        assert_eq!(omla.feature_width(), NUM_SIGNATURE_FEATURES);
        let mut rng = StdRng::seed_from_u64(5);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(12).lock(&base, &mut rng).expect("lockable");
        let mut rng2 = StdRng::seed_from_u64(6);
        let data = omla.generate_training_data(&locked.aig, &Script::new(), &mut rng2);
        assert!(!data.is_empty());
        assert!(data
            .iter()
            .all(|g| g.features.cols() == NUM_SIGNATURE_FEATURES));
        let target = AttackTarget::new(locked, Script::new());
        let model = GinClassifier::new(omla.feature_width(), 12, 2, 1);
        let probs = omla.predict_bits(&model, &target.deployed, &target.key_positions());
        assert_eq!(probs.len(), 12);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn prediction_vector_has_key_size_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = IscasBenchmark::C432.build();
        let locked = Rll::new(12).lock(&base, &mut rng).expect("lockable");
        let target = AttackTarget::new(locked, Script::new());
        let omla = Omla::new(quick_config());
        let model = GinClassifier::new(NUM_FEATURES, 12, 2, 1);
        let probs = omla.predict_bits(&model, &target.deployed, &target.key_positions());
        assert_eq!(probs.len(), 12);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
