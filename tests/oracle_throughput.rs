//! Release-mode throughput envelope for the compiled oracle backend.
//!
//! The instruction-buffer evaluator exists for one reason: batched oracle
//! queries (AppSAT settlement, signature sweeps, probe evaluation) must
//! not be bottlenecked by the enum-dispatching node walk. Two floors on
//! the XOR-dominated c1355 profile:
//!
//! - **Word-level fast path** (`query_words`, what Double-DIP probes and
//!   signature sweeps use): at least 10x the interpreted walk in
//!   patterns/second. The measured gap is far larger, so this only fails
//!   when the fast path stops being fast — a register-indirection
//!   regression or an accidental per-pattern fallback.
//! - **Bool-batch convenience path** (`query_batch`, what AppSAT
//!   settlement uses): at least 3x. This path pays per-pattern `Vec`
//!   materialisation on both sides, so its ceiling is allocator-bound;
//!   the floor catches the fused pack/eval/unpack loop degenerating to
//!   scalar queries.
//!
//! Every timing is the best of three runs — a floor should compare the
//! backends' capabilities, not whichever run ate a scheduler hiccup.
//! Debug builds skip (the envelope is calibrated for `--release`).

use almost_repro::aig::compile::pack_patterns;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{BatchOracle, CompiledOracle, InterpretedOracle};
use almost_repro::testutil::release_mode;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

fn best_of_3<T>(mut run: impl FnMut() -> T) -> (f64, T) {
    let started = Instant::now();
    let mut result = run();
    let mut fastest = started.elapsed().as_secs_f64();
    for _ in 0..2 {
        let started = Instant::now();
        result = run();
        fastest = fastest.min(started.elapsed().as_secs_f64());
    }
    (fastest, result)
}

#[test]
fn compiled_oracle_is_at_least_ten_times_faster_on_c1355() {
    if !release_mode("compiled_oracle_is_at_least_ten_times_faster_on_c1355") {
        return;
    }
    let design = IscasBenchmark::C1355.build();
    let mut rng = StdRng::seed_from_u64(0xC1355);
    let num_patterns = 16_384usize;
    let patterns: Vec<Vec<bool>> = (0..num_patterns)
        .map(|_| (0..design.num_inputs()).map(|_| rng.random()).collect())
        .collect();
    let words = pack_patterns(design.num_inputs(), &patterns);
    let num_words = num_patterns / 64;

    let walk = InterpretedOracle::new(design.clone());
    let compiled = CompiledOracle::new(design).expect("c1355 compiles");

    // Warm up both paths so first-touch allocation is off the clock.
    let warmup = &patterns[..64];
    assert_eq!(walk.query_batch(warmup), compiled.query_batch(warmup));

    // Word-level fast path: >= 10x.
    let (walk_secs, want) = best_of_3(|| walk.query_words(&words, num_words));
    let (compiled_secs, got) = best_of_3(|| compiled.query_words(&words, num_words));
    assert_eq!(
        got, want,
        "backends must agree before timing means anything"
    );
    let speedup = walk_secs / compiled_secs.max(1e-12);
    assert!(
        speedup >= 10.0,
        "compiled word-level path must be >= 10x the node walk on c1355, got {speedup:.1}x \
         (walk {walk_secs:.4}s, compiled {compiled_secs:.4}s for {num_patterns} patterns)"
    );

    // Bool-batch convenience path: >= 3x.
    let (walk_secs, want) = best_of_3(|| walk.query_batch(&patterns));
    let (compiled_secs, got) = best_of_3(|| compiled.query_batch(&patterns));
    assert_eq!(
        got, want,
        "backends must agree before timing means anything"
    );
    let speedup = walk_secs / compiled_secs.max(1e-12);
    assert!(
        speedup >= 3.0,
        "compiled bool-batch path must be >= 3x the node walk on c1355, got {speedup:.1}x \
         (walk {walk_secs:.4}s, compiled {compiled_secs:.4}s for {num_patterns} patterns)"
    );
}
