//! End-to-end ALMOST pipeline integration tests (scaled down to stay
//! test-suite friendly).

use almost_repro::almost::{run_almost, AlmostConfig, ProxyConfig, ProxyKind, Recipe, SaConfig};
use almost_repro::attacks::{AttackTarget, Omla, OmlaConfig, OracleLessAttack, SubgraphConfig};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::apply_key;
use almost_repro::sat::{check_equivalence, Equivalence};

fn quick_config() -> AlmostConfig {
    AlmostConfig {
        key_size: 24,
        proxy_kind: ProxyKind::Adversarial,
        proxy: ProxyConfig {
            initial_samples: 72,
            augment_samples: 24,
            epochs: 16,
            period: 8,
            relock_key_size: 24,
            hidden: 12,
            layers: 2,
            batch_size: 24,
            learning_rate: 8e-3,
            subgraph: SubgraphConfig {
                hops: 2,
                max_nodes: 28,
            },
            adversarial_sa: SaConfig {
                iterations: 4,
                seed: 5,
                ..SaConfig::default()
            },
            seed: 5,
        },
        sa: SaConfig {
            iterations: 8,
            seed: 6,
            ..SaConfig::default()
        },
        seed: 7,
    }
}

#[test]
fn pipeline_preserves_function_sat_proved() {
    let design = IscasBenchmark::C432.build();
    let outcome = run_almost(&design, &quick_config()).expect("lockable");
    let restored = apply_key(
        &outcome.deployed,
        outcome.locked.key_input_start,
        outcome.locked.key.bits(),
    );
    assert_eq!(
        check_equivalence(&design, &restored),
        Equivalence::Equivalent
    );
}

#[test]
fn pipeline_recipe_is_at_least_as_secure_as_baseline_under_its_own_proxy() {
    let design = IscasBenchmark::C880.build();
    let outcome = run_almost(&design, &quick_config()).expect("lockable");
    let baseline_deployed = Recipe::resyn2().apply(&outcome.locked.aig);
    let baseline_acc = outcome
        .proxy
        .predict_accuracy(&outcome.locked, &baseline_deployed);
    assert!(
        (outcome.search.accuracy - 0.5).abs() <= (baseline_acc - 0.5).abs() + 1e-9,
        "ALMOST recipe ({:.3}) must sit no further from 0.5 than resyn2 ({:.3})",
        outcome.search.accuracy,
        baseline_acc
    );
}

#[test]
fn omla_recovers_keys_without_synthesis_defence() {
    // The attack-side sanity anchor for the whole evaluation: raw RLL is
    // highly vulnerable to OMLA (the paper's premise).
    let design = IscasBenchmark::C880.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use almost_repro::locking::{LockingScheme, Rll};
    use rand::SeedableRng;
    let locked = Rll::new(32).lock(&design, &mut rng).expect("lockable");
    let target = AttackTarget::new(locked, almost_repro::aig::Script::new());
    let omla = Omla::new(OmlaConfig {
        hidden: 12,
        layers: 2,
        epochs: 25,
        batch_size: 32,
        learning_rate: 8e-3,
        relock_key_size: 24,
        training_samples: 144,
        subgraph: SubgraphConfig {
            hops: 3,
            max_nodes: 32,
        },
        functional_signatures: false,
        seed: 3,
    });
    let outcome = omla.attack(&target);
    assert!(
        outcome.accuracy > 0.65,
        "raw RLL must be vulnerable, OMLA got {:.2}",
        outcome.accuracy
    );
}
