//! Release-mode envelope for fraig-first combinational equivalence
//! checking.
//!
//! PR 3 gave `check_equivalence` a monolithic miter; anything arithmetic
//! (the c6288 multiplier above all) had to hide behind a conflict budget
//! and answer `None`. The fraig sweep removes the crutch: candidate
//! equivalences are proved pairwise from the inputs outward, so the
//! multiplier pair decomposes into thousands of small queries instead of
//! one resolution-hard miter. Two floors:
//!
//! - **c6288 vs. a locally restructured self settles without any
//!   budget**, and at least 5x faster than the legacy monolithic path
//!   spends *failing* (or succeeding, on the off chance the budget
//!   suffices) at the same job.
//! - **Locked-vs-original certification** (c1355/c1908 under 32-bit RLL,
//!   correct key re-applied) completes unbudgeted — the exact CEC call
//!   the attack report's verdict column needs.
//!
//! Timings are wall-clock once per path (the margin is large enough that
//! best-of-N would be theatre). Debug builds skip.

use almost_repro::aig::{Aig, Lit, NodeKind};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, LockingScheme, Rll};
use almost_repro::sat::{check_equivalence, check_equivalence_limited, Equivalence};
use almost_repro::testutil::release_mode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Conflict budget for the legacy monolithic reference point — generous
/// enough that spending it takes real time, far too small to crack a
/// multiplier miter.
const LEGACY_BUDGET: u64 = 20_000;

/// Rebuilds `aig` with every `stride`-th AND wrapped in the absorption
/// identity `u -> (u & s) | (u & !s)` (select `s` = first input).
///
/// The wrapper survives strash (the hash only folds one-level patterns),
/// so the result is functionally identical but structurally divergent
/// from the wrapper onward — the profile a resynthesized or key-locked
/// netlist presents to CEC. `resyn2` is a fixpoint on the array
/// multiplier (it returns c6288 unchanged), so this transform is what
/// stands in for "the same function, restructured".
fn redundify(aig: &Aig, stride: usize) -> Aig {
    let mut out = Aig::new();
    let inputs: Vec<Lit> = (0..aig.num_inputs()).map(|_| out.add_input()).collect();
    let select = inputs[0];
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, &v) in aig.inputs().iter().enumerate() {
        map[v as usize] = inputs[i];
    }
    let mut ands = 0usize;
    for v in 0..aig.num_nodes() {
        if let NodeKind::And(fa, fb) = aig.node(v as u32) {
            let a = map[fa.var() as usize].xor_complement(fa.is_complement());
            let b = map[fb.var() as usize].xor_complement(fb.is_complement());
            let mut lit = out.and(a, b);
            ands += 1;
            if ands.is_multiple_of(stride) && !lit.is_const() {
                let then_arm = out.and(lit, select);
                let else_arm = out.and(lit, !select);
                lit = out.or(then_arm, else_arm);
            }
            map[v] = lit;
        }
    }
    for &o in aig.outputs() {
        out.add_output(map[o.var() as usize].xor_complement(o.is_complement()));
    }
    out
}

#[test]
fn fraig_cec_settles_restructured_c6288_with_headroom() {
    if !release_mode("fraig_cec_settles_restructured_c6288_with_headroom") {
        return;
    }
    let original = IscasBenchmark::C6288.build();
    let restructured = redundify(&original, 16);
    assert!(
        restructured.num_ands() > original.num_ands(),
        "redundification must actually insert wrappers"
    );

    let started = Instant::now();
    let legacy = check_equivalence_limited(&original, &restructured, LEGACY_BUDGET);
    let legacy_secs = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let verdict = check_equivalence(&original, &restructured);
    let fraig_secs = started.elapsed().as_secs_f64();
    assert_eq!(
        verdict,
        Equivalence::Equivalent,
        "redundification must be equivalence-preserving on c6288"
    );

    let speedup = legacy_secs / fraig_secs.max(1e-12);
    println!(
        "c6288 CEC: legacy {legacy_secs:.3}s ({}), fraig-first {fraig_secs:.3}s => {speedup:.1}x",
        match &legacy {
            None => "budget exhausted, no answer".to_string(),
            Some(v) => format!("{v:?}"),
        }
    );
    assert!(
        speedup >= 5.0,
        "fraig-first CEC must beat the {LEGACY_BUDGET}-conflict monolithic miter by >= 5x \
         on the c6288 pair, got {speedup:.1}x (legacy {legacy_secs:.3}s, fraig {fraig_secs:.3}s)"
    );
    if let Some(v) = legacy {
        assert_eq!(v, Equivalence::Equivalent, "budgeted verdict must agree");
    }
}

#[test]
fn locked_benchmarks_certify_unbudgeted_against_their_originals() {
    if !release_mode("locked_benchmarks_certify_unbudgeted_against_their_originals") {
        return;
    }
    for bench in [IscasBenchmark::C1355, IscasBenchmark::C1908] {
        let design = bench.build();
        let mut rng = StdRng::seed_from_u64(0xCEC0 ^ bench.name().len() as u64);
        let locked = Rll::new(32).lock(&design, &mut rng).expect("lockable");

        // Correct key: certification, no budget, must land Equivalent.
        let keyed = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        let started = Instant::now();
        assert_eq!(
            check_equivalence(&design, &keyed),
            Equivalence::Equivalent,
            "{bench}: correct key must certify"
        );
        println!(
            "{bench} locked-vs-original certified in {:.3}s",
            started.elapsed().as_secs_f64()
        );

        // One flipped key bit: whatever the verdict, a returned
        // counterexample must actually distinguish the two circuits.
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0];
        let miskeyed = apply_key(&locked.aig, locked.key_input_start, &wrong);
        if let Equivalence::Counterexample(pattern) = check_equivalence(&design, &miskeyed) {
            assert_ne!(
                design.eval(&pattern),
                miskeyed.eval(&pattern),
                "{bench}: counterexample does not distinguish the circuits"
            );
        }
    }
}
