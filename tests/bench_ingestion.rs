//! End-to-end `.bench` ingestion: a netlist enters through
//! `netlist::parse_bench`, gets locked, attacked with the oracle-guided
//! SAT attack, and the recovered key is CEC-verified — closing the
//! ROADMAP gap that no harness exercised attacks on a *parsed* netlist.
//! The writer side round-trips through `write_bench` → `parse_bench`.

use almost_repro::attacks::SatAttack;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, CircuitOracle, LockingScheme, Rll, SarLock, Stacked};
use almost_repro::netlist::bench_format::{parse_bench, write_bench};
use almost_repro::sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ISCAS-85 c17 netlist, verbatim (the distribution's six NAND gates).
const C17_BENCH: &str = "\
# c17 — smallest ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[test]
fn c17_parses_locks_and_falls_to_the_sat_attack() {
    let design = parse_bench(C17_BENCH).expect("c17 parses");
    assert_eq!(design.num_inputs(), 5);
    assert_eq!(design.num_outputs(), 2);
    assert_eq!(design.num_ands(), 6, "six NAND gates share AND structure");

    let mut rng = StdRng::seed_from_u64(17);
    let locked = Rll::new(3).lock(&design, &mut rng).expect("lockable");
    let oracle = CircuitOracle::from_locked(&locked);
    let run = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    assert!(run.proved_exact);
    assert!(run.accounting_consistent());
    let restored = apply_key(&locked.aig, locked.key_input_start, &run.recovered);
    assert_eq!(
        check_equivalence(&design, &restored),
        Equivalence::Equivalent,
        "recovered key must unlock the parsed c17"
    );
}

#[test]
fn parsed_netlist_survives_the_full_attack_pipeline_on_c432() {
    // Export the generated c432 profile to `.bench` text, read it back,
    // and run the whole lock → attack → CEC pipeline on the *parsed*
    // circuit — the ingestion path a user with real ISCAS files takes.
    let generated = IscasBenchmark::C432.build();
    let text = write_bench(&generated);
    let parsed = parse_bench(&text).expect("generated bench text parses");
    assert_eq!(
        check_equivalence(&generated, &parsed),
        Equivalence::Equivalent,
        "write_bench → parse_bench must round-trip exactly"
    );

    let mut rng = StdRng::seed_from_u64(0x432);
    let locked = Rll::new(12).lock(&parsed, &mut rng).expect("lockable");
    let oracle = CircuitOracle::from_locked(&locked);
    let run = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    assert!(run.proved_exact);
    let restored = apply_key(&locked.aig, locked.key_input_start, &run.recovered);
    assert_eq!(
        check_equivalence(&parsed, &restored),
        Equivalence::Equivalent
    );
}

#[test]
fn locked_point_function_circuits_round_trip_through_bench_text() {
    // A SARLock-over-RLL compound (comparator trees, constant-keyed
    // masks) written to `.bench` and parsed back must stay equivalent —
    // locked netlists are exactly what gets shipped to a foundry.
    let design = parse_bench(C17_BENCH).expect("c17 parses");
    let mut rng = StdRng::seed_from_u64(7);
    let locked = Stacked::new(Rll::new(2), SarLock::new(3))
        .lock(&design, &mut rng)
        .expect("lockable");
    let text = write_bench(&locked.aig);
    let parsed = parse_bench(&text).expect("locked netlist parses");
    assert_eq!(parsed.num_inputs(), design.num_inputs() + 5);
    assert_eq!(
        check_equivalence(&locked.aig, &parsed),
        Equivalence::Equivalent,
        "locked circuit must survive the .bench round-trip"
    );
    // And the correct key still unlocks the round-tripped netlist.
    let restored = apply_key(&parsed, locked.key_input_start, locked.key.bits());
    assert_eq!(
        check_equivalence(&design, &restored),
        Equivalence::Equivalent
    );
}
