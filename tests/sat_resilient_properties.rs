//! Property tests for the SAT-resilient locking family (in-tree proptest
//! shim): functional soundness of Anti-SAT, SARLock and their stacked
//! compounds across random seeds and key sizes.
//!
//! - The locked circuit under the *correct* key is CEC-equivalent to the
//!   original.
//! - Any single-bit-wrong key differs from the original on at least one
//!   input (the point function guarantees a witness: the comparator fires
//!   on exactly the pattern spelled by the wrong key).
//! - `LockError::NotEnoughGates` fires on circuits too small to tap.

use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, AntiSat, LockError, LockingScheme, Rll, SarLock, Stacked};
use almost_repro::sat::{check_equivalence, Equivalence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn schemes(k: usize) -> Vec<Box<dyn LockingScheme>> {
    vec![
        Box::new(SarLock::new(k)),
        Box::new(AntiSat::new(k)),
        Box::new(Stacked::new(Rll::new(4), SarLock::new(k))),
        Box::new(Stacked::new(Rll::new(4), AntiSat::new(k))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn correct_key_is_cec_equivalent(seed in 0u64..1000, k in 3usize..6) {
        let design = IscasBenchmark::C432.build();
        for scheme in schemes(k) {
            let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 3);
            let locked = scheme.lock(&design, &mut rng).expect("lockable");
            let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
            prop_assert_eq!(
                check_equivalence(&design, &restored),
                Equivalence::Equivalent,
                "{} must be sound under the correct key",
                scheme.name()
            );
        }
    }

    #[test]
    fn any_single_bit_wrong_key_has_a_witness(seed in 0u64..1000, k in 3usize..5) {
        // Point-function schemes only: the comparator structure makes the
        // single-bit guarantee *exact* (a flipped bit always awakens the
        // flip signal on at least one input pattern).
        let design = IscasBenchmark::C432.build();
        for scheme in [
            Box::new(SarLock::new(k)) as Box<dyn LockingScheme>,
            Box::new(AntiSat::new(k)),
        ] {
            let mut rng = StdRng::seed_from_u64(seed ^ (k as u64) << 7);
            let locked = scheme.lock(&design, &mut rng).expect("lockable");
            for bit in 0..locked.key_size() {
                let mut wrong = locked.key.bits().to_vec();
                wrong[bit] = !wrong[bit];
                let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
                prop_assert!(
                    matches!(
                        check_equivalence(&design, &broken),
                        Equivalence::Counterexample(_)
                    ),
                    "{}: flipping key bit {bit} must corrupt the function",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn single_overlay_bit_wrong_compound_key_has_a_witness(seed in 0u64..1000) {
        // Stacked compounds inherit the guarantee for overlay bits.
        let design = IscasBenchmark::C432.build();
        let scheme = Stacked::new(Rll::new(6), SarLock::new(4));
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = scheme.lock(&design, &mut rng).expect("lockable");
        for bit in 6..locked.key_size() {
            let mut wrong = locked.key.bits().to_vec();
            wrong[bit] = !wrong[bit];
            let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
            prop_assert!(
                matches!(
                    check_equivalence(&design, &broken),
                    Equivalence::Counterexample(_)
                ),
                "flipping overlay key bit {bit} must corrupt the function"
            );
        }
    }
}

#[test]
fn not_enough_gates_fires_on_tiny_circuits() {
    // A 2-input circuit cannot host a 4-bit point function: the schemes
    // must refuse with the structured error, not mis-lock.
    let mut tiny = almost_repro::aig::Aig::new();
    let a = tiny.add_input();
    let b = tiny.add_input();
    let f = tiny.and(a, b);
    tiny.add_output(f);

    let mut rng = StdRng::seed_from_u64(1);
    for scheme in [
        Box::new(SarLock::new(4)) as Box<dyn LockingScheme>,
        Box::new(AntiSat::new(4)),
    ] {
        match scheme.lock(&tiny, &mut rng) {
            Err(LockError::NotEnoughGates {
                available,
                requested,
            }) => {
                assert_eq!(available, 2, "{}: two tappable inputs", scheme.name());
                assert_eq!(requested, 4);
            }
            other => panic!("{}: expected NotEnoughGates, got {other:?}", scheme.name()),
        }
    }
    // Zero-width point functions are rejected too (degenerate comparator).
    assert!(SarLock::new(0).lock(&tiny, &mut rng).is_err());
    assert!(AntiSat::new(0).lock(&tiny, &mut rng).is_err());

    // The compound propagates whichever layer fails.
    let err = Stacked::new(Rll::new(1), SarLock::new(64))
        .lock(&tiny, &mut rng)
        .expect_err("overlay cannot tap 64 inputs");
    assert!(matches!(
        err,
        LockError::NotEnoughGates { requested: 64, .. }
    ));
}
