//! The headline SAT-resilience contract, end to end: on a SARLock-over-RLL
//! compound lock the *exact* SAT attack exceeds its DIP budget (the
//! defence works), while Double DIP strips the point function and recovers
//! the RLL base key exactly (the counter-attack works).
//!
//! The default-size case runs on c432; the full-size c1355 scenario
//! (16-bit RLL base + 12-bit SARLock, 4096-DIP floor) runs when
//! `ALMOST_SCALE=ci` or `paper` is set — the CI release job covers it.

use almost_repro::attacks::{DoubleDip, SatAttack, SatAttackConfig, SatAttackMode};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{
    apply_key, CircuitOracle, LockedCircuit, LockingScheme, Rll, SarLock, Stacked,
};
use almost_repro::sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// True when the deep (release-scale) scenarios should run.
fn deep_scale() -> bool {
    matches!(
        std::env::var("ALMOST_SCALE").as_deref(),
        Ok("ci") | Ok("CI") | Ok("paper") | Ok("PAPER")
    )
}

/// Asserts the full contract on one lock: exact SAT stalls at
/// `sat_budget` iterations; Double DIP settles and its key, with the
/// overlay bits replaced by ground truth, passes an exact CEC.
fn assert_contract(
    design: &almost_repro::aig::Aig,
    locked: &LockedCircuit,
    base_bits: usize,
    sat_budget: usize,
) {
    // The contract bounds trajectory lengths (budget ceilings), so pin
    // the serial reference width — a racing portfolio on multi-core CI
    // would vary the DIP trajectory run to run.
    std::env::set_var("ALMOST_SOLVERS", "1");
    let oracle = CircuitOracle::from_locked(locked);
    let stalled = SatAttack::new(SatAttackConfig {
        mode: SatAttackMode::Exact,
        max_iterations: sat_budget,
        seed: 0x5A7,
    })
    .run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    assert!(
        !stalled.proved_exact,
        "the exact attack must exceed its {sat_budget}-DIP budget"
    );
    assert_eq!(
        stalled.iterations.len(),
        sat_budget,
        "every budgeted iteration is a logged DIP"
    );
    assert!(stalled.accounting_consistent());

    let dd_oracle = CircuitOracle::from_locked(locked);
    let run = DoubleDip::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &dd_oracle,
    );
    assert!(run.two_dip_settled, "the 2-DIP loop must converge");
    assert!(
        run.dip_count() < sat_budget,
        "Double DIP must beat the budget that stopped the exact attack \
         (spent {})",
        run.dip_count()
    );
    assert!(run.accounting_consistent());

    let mut key = run.recovered.clone();
    key[base_bits..].copy_from_slice(&locked.key.bits()[base_bits..]);
    let restored = apply_key(&locked.aig, locked.key_input_start, &key);
    assert_eq!(
        check_equivalence(design, &restored),
        Equivalence::Equivalent,
        "recovered base key + true overlay must unlock the design"
    );
}

#[test]
fn double_dip_beats_sarlock_over_rll_on_c432() {
    let design = IscasBenchmark::C432.build();
    let mut rng = StdRng::seed_from_u64(63);
    let locked = Stacked::new(Rll::new(10), SarLock::new(8))
        .lock(&design, &mut rng)
        .expect("lockable");
    // SARLock-8 floor: 255 DIPs. Budget 48 is comfortable for RLL-10
    // alone (< 24 DIPs) and hopeless against the compound.
    assert_contract(&design, &locked, 10, 48);
}

#[test]
fn double_dip_beats_full_size_sarlock_over_rll_on_c1355() {
    if !deep_scale() {
        eprintln!("skipping full-size c1355 scenario (set ALMOST_SCALE=ci to run)");
        return;
    }
    let design = IscasBenchmark::C1355.build();
    let mut rng = StdRng::seed_from_u64(63);
    let locked = Stacked::new(Rll::new(16), SarLock::new(12))
        .lock(&design, &mut rng)
        .expect("lockable");
    // SARLock-12 floor: 4095 DIPs; the 2-DIP loop settles in a few dozen.
    assert_contract(&design, &locked, 16, 64);
}
