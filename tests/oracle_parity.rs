//! Differential correctness for the oracle backends: the compiled
//! instruction-buffer evaluator must be bit-for-bit identical to the
//! interpreted node walk on every locking scheme, every batch shape, and
//! every degenerate netlist the compiler front door accepts — and both
//! backends must account queries identically.

use almost_repro::aig::compile::pack_patterns;
use almost_repro::aig::{Aig, CompiledAig, Lit};
use almost_repro::locking::{
    AntiSat, BatchOracle, CircuitOracle, CompiledOracle, InterpretedOracle, LockingScheme, MuxLock,
    Oracle, Rll, SarLock, Stacked,
};
use almost_repro::netlist::bench_format::{parse_bench, write_bench};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A connected random AIG: the raw material for scheme-agnostic parity.
fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
    let mut guard = 0;
    while aig.num_ands() < num_ands && guard < 20 * num_ands {
        guard += 1;
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let lit = aig.and(
            a.xor_complement(rng.random()),
            b.xor_complement(rng.random()),
        );
        if !lit.is_const() {
            pool.push(lit);
        }
    }
    for i in 0..3.min(pool.len()) {
        let lit = pool[pool.len() - 1 - i];
        aig.add_output(lit);
    }
    aig
}

fn random_patterns(num_inputs: usize, count: usize, rng: &mut StdRng) -> Vec<Vec<bool>> {
    (0..count)
        .map(|_| (0..num_inputs).map(|_| rng.random()).collect())
        .collect()
}

/// The five locking schemes of the reproduction, trait-object form.
fn all_schemes() -> Vec<Box<dyn LockingScheme>> {
    vec![
        Box::new(Rll::new(8)),
        Box::new(MuxLock::new(8)),
        Box::new(AntiSat::new(4)),
        Box::new(SarLock::new(6)),
        Box::new(Stacked::new(Rll::new(4), AntiSat::new(3))),
    ]
}

/// Asserts that all three oracle backends agree bit-for-bit on `patterns`
/// and account the same number of queries.
fn assert_backend_parity(design: &Aig, patterns: &[Vec<bool>]) {
    let reference = InterpretedOracle::new(design.clone());
    let compiled = CompiledOracle::new(design.clone()).expect("compilable");
    let circuit = CircuitOracle::new(design.clone());
    assert!(
        circuit.is_compiled(),
        "CircuitOracle must pick the fast path"
    );

    let want = reference.query_batch(patterns);
    assert_eq!(compiled.query_batch(patterns), want, "compiled != walk");
    assert_eq!(circuit.query_batch(patterns), want, "circuit != walk");
    assert_eq!(reference.queries_served(), patterns.len());
    assert_eq!(compiled.queries_served(), patterns.len());
    assert_eq!(circuit.queries_served(), patterns.len());

    // Scalar path agrees with the batch path, pattern by pattern.
    for (p, w) in patterns.iter().zip(&want) {
        assert_eq!(&compiled.query(p), w);
        assert_eq!(&circuit.query(p), w);
    }

    // Word-level path agrees with the packed reference answers.
    if !patterns.is_empty() {
        let words = pack_patterns(design.num_inputs(), patterns);
        let num_words = patterns.len().div_ceil(64);
        assert_eq!(
            compiled.query_words(&words, num_words),
            reference.query_words(&words, num_words),
            "word-level compiled != walk"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn compiled_oracle_matches_walk_on_random_aigs(seed in 0u64..100_000) {
        let aig = random_aig(10, 60, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
        // 70 crosses the 64-pattern word boundary.
        let patterns = random_patterns(aig.num_inputs(), 70, &mut rng);
        assert_backend_parity(&aig, &patterns);
    }

    #[test]
    fn compiled_oracle_matches_walk_on_every_scheme(seed in 0u64..100_000) {
        let base = random_aig(12, 90, seed);
        for scheme in all_schemes() {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let Ok(locked) = scheme.lock(&base, &mut rng) else {
                continue; // this random netlist is too small for the scheme
            };
            // Oracle over the *activated* circuit: key hard-wired.
            let oracle_design = almost_repro::locking::apply_key(
                &locked.aig,
                locked.key_input_start,
                locked.key.bits(),
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFACADE);
            let patterns = random_patterns(oracle_design.num_inputs(), 65, &mut rng);
            assert_backend_parity(&oracle_design, &patterns);
            // And over the locked netlist itself (key inputs exposed).
            let mut rng = StdRng::seed_from_u64(seed ^ 0x10C8);
            let patterns = random_patterns(locked.aig.num_inputs(), 33, &mut rng);
            assert_backend_parity(&locked.aig, &patterns);
        }
    }

    #[test]
    fn single_pattern_and_empty_batches(seed in 0u64..100_000) {
        let aig = random_aig(8, 40, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        assert_backend_parity(&aig, &random_patterns(aig.num_inputs(), 1, &mut rng));
        assert_backend_parity(&aig, &[]);
        let oracle = CompiledOracle::new(aig).expect("compilable");
        assert_eq!(oracle.query_batch(&[]), Vec::<Vec<bool>>::new());
        assert_eq!(oracle.queries_served(), 0, "empty batch must count nothing");
    }

    #[test]
    fn query_counters_advance_by_pattern_count(seed in 0u64..100_000, n in 0usize..130) {
        let aig = random_aig(6, 30, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let patterns = random_patterns(aig.num_inputs(), n, &mut rng);
        let compiled = CompiledOracle::new(aig.clone()).expect("compilable");
        let walk = InterpretedOracle::new(aig.clone());
        let circuit = CircuitOracle::new(aig);
        for oracle in [&compiled as &dyn BatchOracle, &walk, &circuit] {
            oracle.query_batch(&patterns);
            prop_assert_eq!(oracle.queries_served(), n);
            for p in &patterns {
                oracle.query(p);
            }
            prop_assert_eq!(oracle.queries_served(), 2 * n);
        }
    }
}

// ---------------------------------------------------------------------
// Compiler front door: degenerate and adversarial netlists.
// ---------------------------------------------------------------------

#[test]
fn zero_input_and_constant_only_netlists_never_panic() {
    // No inputs, constant outputs.
    let mut aig = Aig::new();
    aig.add_output(Lit::FALSE);
    aig.add_output(Lit::TRUE);
    assert_backend_parity(&aig, &[vec![], vec![], vec![]]);

    // Inputs present but every output cone is constant.
    let mut aig = Aig::new();
    let _a = aig.add_input();
    let _b = aig.add_input();
    aig.add_output(Lit::TRUE);
    let mut rng = StdRng::seed_from_u64(1);
    assert_backend_parity(&aig, &random_patterns(2, 5, &mut rng));

    // A bare wire: output = input, zero instructions.
    let mut aig = Aig::new();
    let a = aig.add_input();
    aig.add_output(a);
    let code = CompiledAig::compile(&aig).expect("compilable");
    assert_eq!(code.stats().instructions, 0);
    assert_backend_parity(&aig, &[vec![false], vec![true]]);

    // No outputs at all: a legal if useless oracle.
    let mut aig = Aig::new();
    let _ = aig.add_input();
    assert_backend_parity(&aig, &random_patterns(1, 3, &mut rng));
}

#[test]
#[should_panic(expected = "nonexistent node")]
fn dangling_outputs_are_refused_at_the_builder() {
    // The append-only builder rejects dangling outputs before the compiler
    // ever sees them, so `CompileError::DanglingOutput` stays a
    // defence-in-depth check for hand-built graphs. Pin the refusal.
    let mut aig = Aig::new();
    let _ = aig.add_input();
    aig.add_output(Lit::positive(99));
}

#[test]
fn bench_round_trip_artifacts_compile_to_the_same_function() {
    for seed in 0..4u64 {
        let aig = random_aig(7, 35, seed);
        let text = write_bench(&aig);
        let parsed = parse_bench(&text).expect("round trip parses");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB15);
        let patterns = random_patterns(aig.num_inputs(), 70, &mut rng);
        // Parsed artifact through the compiled backend equals the original
        // through the interpreted walk: parser and compiler compose.
        let original = InterpretedOracle::new(aig);
        let reparsed = CompiledOracle::new(parsed).expect("parsed artifact compiles");
        assert_eq!(
            reparsed.query_batch(&patterns),
            original.query_batch(&patterns)
        );
    }
}

#[test]
fn garbage_bench_text_errors_without_panicking() {
    for text in [
        "",
        "INPUT(",
        "OUTPUT(x)\n",
        "y = AND(a, b)\n",
        "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
        "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n# truncated",
        "\u{0}\u{1}\u{2}",
    ] {
        // Err or Ok are both acceptable; panics are not. Anything that
        // parses must also survive the compiler front door.
        if let Ok(aig) = parse_bench(text) {
            let _ = CompiledAig::compile(&aig);
        }
    }
}
