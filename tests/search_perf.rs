//! Release-mode throughput envelope for the batched search engine.
//!
//! Pins the candidates-per-second of a ci-scale Fig.-4 cell (c1908, RLL
//! key 64, 12 annealing steps) above a generous ~4x tripwire, so a
//! regression that makes candidate evaluation an order of magnitude
//! slower — a trie that stops sharing, a batch scorer that falls back to
//! per-graph forwards — fails loudly in the CI `perf-smoke` job. Proxy
//! training happens before the timed region; only the search itself
//! (trie synthesis + fused GIN scoring) is measured, through the
//! engine's own counters.
//!
//! Calibration (this container, 1 CPU, release, `ALMOST_JOBS=1`):
//! ~1.7 candidates/s at `proposals = 1` (each candidate is a ≤10-pass
//! synthesis of an ~800-AND locked c1908 plus a 64-locality fused GIN
//! forward). The floor is 0.4 cand/s; re-measure and re-pin when
//! deliberately changing the engine.

use almost_repro::almost::{generate_secure_recipe, train_proxy, ProxyConfig, ProxyKind, SaConfig};
use almost_repro::attacks::subgraph::SubgraphConfig;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{LockingScheme, Rll};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sa_search_throughput_envelope() {
    if !almost_repro::testutil::release_mode("sa_search_throughput_envelope") {
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x19A8);
    let locked = Rll::new(64)
        .lock(&IscasBenchmark::C1908.build(), &mut rng)
        .expect("lockable");
    let proxy = train_proxy(
        &locked,
        ProxyKind::Resyn2,
        &ProxyConfig {
            initial_samples: 64,
            epochs: 12,
            period: 12,
            hidden: 12,
            subgraph: SubgraphConfig {
                hops: 3,
                max_nodes: 32,
            },
            ..ProxyConfig::default()
        },
    );
    let sa = SaConfig {
        iterations: 12,
        proposals: 1,
        seed: 0x5EA,
        ..SaConfig::default()
    };
    let result = generate_secure_recipe(&locked, &proxy, &sa);
    let stats = result.engine;
    eprintln!(
        "search engine: {} ({:.1}s)",
        stats.summary(),
        stats.elapsed.as_secs_f64(),
    );
    assert_eq!(stats.candidates, 13, "initial + one per step");
    assert!(
        stats.cache.hits > 0,
        "sibling proposals must reuse trie prefixes"
    );
    assert_eq!(stats.cache.evictions, 0, "default budget must not evict");
    let cps = stats.candidates_per_sec();
    assert!(
        cps >= 0.4,
        "search throughput collapsed: {cps:.2} candidates/s (floor 0.4, \
         calibrated ~1.7 on the reference container; re-pin on deliberate \
         engine changes)"
    );
}
