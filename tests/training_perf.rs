//! Release-mode behavioural envelope for the GIN training hot path.
//!
//! Wall-clock assertions alone cannot distinguish "the kernels got
//! slower" from "CI had a noisy neighbour", so this test pins two
//! *deterministic* counters next to one generous wall-time ceiling:
//!
//! - **Allocation-free hot loop**: the per-block tapes recycle their
//!   buffers, so training for more epochs must not allocate a single
//!   additional matrix buffer after the first-epoch warm-up
//!   (`TrainStats::tape_allocs` is identical for 2 and 8 epochs).
//! - **Op-count linearity**: `TrainStats::tape_ops` scales exactly with
//!   the epoch count — nothing silently re-records or skips work.
//! - **Epoch wall time**: the mean epoch of a table-2-profile OMLA cell
//!   (ci scale: 120 graphs, ≤32-node localities, hidden 20, 2 GIN
//!   rounds) stays under a ~10x envelope of the measured cost, so an
//!   order-of-magnitude regression in the sparse aggregation or the
//!   in-place backward fails here, in the CI `perf-smoke` job.
//!
//! Debug builds skip (the envelope is calibrated for `--release`).

use almost_ml::gin::{GinClassifier, Graph};
use almost_ml::tensor::Matrix;
use almost_ml::train::{train, train_with_callback, TrainConfig};
use std::time::Instant;

/// A synthetic table-2-profile dataset: OMLA ci-scale shapes (120
/// localities of up to 32 nodes, 11 features) without the circuit
/// machinery, so the envelope isolates the ML hot path.
fn omla_profile_dataset() -> Vec<Graph> {
    let mut state = 0xD1CEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..120)
        .map(|_| {
            let nodes = 8 + (next() % 25) as usize; // 8..=32
            let label = next().is_multiple_of(2);
            let mut f = Matrix::zeros(nodes, 11);
            for r in 0..nodes {
                for c in 0..11 {
                    if next().is_multiple_of(3) {
                        f.set(r, c, (next() % 200) as f32 / 100.0 - 1.0);
                    }
                }
                if label {
                    f.set(r, 0, 1.0);
                }
            }
            // Fan-in ≤ 2 localities: a binary-tree-ish edge set.
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v / 2, v)).collect();
            Graph::from_edges(nodes, &edges, f, label)
        })
        .collect()
}

fn config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 32,
        learning_rate: 5e-3,
        seed: 7,
    }
}

#[test]
fn hot_loop_is_allocation_free_and_op_linear() {
    let data = omla_profile_dataset();
    let short = train(&mut GinClassifier::new(11, 20, 2, 3), &data, &config(2));
    let long = train(&mut GinClassifier::new(11, 20, 2, 3), &data, &config(8));
    assert_eq!(
        short.tape_allocs, long.tape_allocs,
        "every epoch after warm-up must run out of recycled buffers"
    );
    assert_eq!(
        long.tape_ops,
        4 * short.tape_ops,
        "tape op count must scale exactly with the epoch count"
    );
    assert!(short.tape_allocs > 0, "the counter is actually wired");
}

#[test]
fn epoch_wall_time_stays_inside_the_envelope() {
    if !almost_repro::testutil::release_mode("training wall-time envelope") {
        return;
    }
    let data = omla_profile_dataset();
    let mut model = GinClassifier::new(11, 20, 2, 3);
    // Warm up the tapes (first epoch pays the workspace allocations).
    train(&mut model, &data, &config(1));
    let mut epoch_ms: Vec<f64> = Vec::new();
    let mut last = Instant::now();
    train_with_callback(&mut model, &data, &config(12), |_, _| {
        epoch_ms.push(last.elapsed().as_secs_f64() * 1e3);
        last = Instant::now();
    });
    let mean = epoch_ms.iter().sum::<f64>() / epoch_ms.len() as f64;
    eprintln!("mean epoch {mean:.2} ms over {} epochs", epoch_ms.len());
    // Measured ~4.7 ms/epoch on one core at this profile; 25 ms is the
    // order-of-magnitude tripwire, not a tight bound — if a deliberate
    // model/kernel change moved it, re-measure and re-pin.
    assert!(
        mean < 25.0,
        "mean epoch {mean:.2} ms blew the 25 ms envelope — the training hot path regressed"
    );
}
