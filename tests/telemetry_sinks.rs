//! End-to-end coverage of the telemetry sinks (ISSUE 6 satellite):
//!
//! - every line the JSONL sink emits parses as schema-valid JSON;
//! - span open/close events balance per thread (at most the harness
//!   root span may stay open — `finish()` flushes sinks before the
//!   process exits);
//! - the Chrome trace is valid JSON with one named job-slice track per
//!   pool worker, and the worker→track-id mapping is stable across runs;
//! - the data rows a harness would write to CSV are byte-identical with
//!   `ALMOST_TRACE` set vs unset (telemetry is provably inert);
//! - the end-of-run aggregator writes a parseable `BENCH_*.json`.
//!
//! One `#[test]` only: the test mutates the process-global `ALMOST_JOBS`
//! and `ALMOST_TRACE` variables and the global telemetry registry, so
//! nothing may run concurrently with it.

use almost_repro::aig::Aig;
use almost_repro::almost::{Recipe, SaConfig, Score, SearchEngine, SearchObjective};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::ml::gin::{GinClassifier, Graph};
use almost_repro::ml::tensor::Matrix;
use almost_repro::ml::train::{train, TrainConfig};
use almost_repro::telemetry;
use almost_repro::telemetry::json::{parse, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct StructuralObjective;

impl SearchObjective for StructuralObjective {
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
        candidates
            .iter()
            .map(|aig| Score::plain(aig.num_ands() as f64 + 0.25 * aig.depth() as f64))
            .collect()
    }
}

fn tiny_dataset() -> Vec<Graph> {
    let mut state = 0x51AEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..16)
        .map(|_| {
            let nodes = 6 + (next() % 8) as usize;
            let label = next() % 2 == 0;
            let mut f = Matrix::zeros(nodes, 5);
            for r in 0..nodes {
                f.set(r, (next() % 5) as usize, 1.0);
                if label {
                    f.set(r, 0, 1.0);
                }
            }
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v / 2, v)).collect();
            Graph::from_edges(nodes, &edges, f, label)
        })
        .collect()
}

/// The "harness body": a pool batch, a search-engine anneal and a GIN
/// training run — the three instrumented layers a real harness drives.
/// Returns the deterministic data rows a harness would write to CSV.
fn harness_body() -> Vec<String> {
    let mut rows = Vec::new();

    // Pool batch (jobs sleep so both workers reliably participate).
    let squares = almost_repro::pool::map_indexed((0..8u64).collect(), |_, x| {
        std::thread::sleep(std::time::Duration::from_millis(2));
        x * x
    });
    for (i, s) in squares.iter().enumerate() {
        rows.push(format!("pool,{i},{s}"));
    }

    // Batched SA search over a cheap structural objective.
    let objective = StructuralObjective;
    let mut engine = SearchEngine::new(IscasBenchmark::C432.build(), &objective);
    let run = engine.anneal(
        Recipe::resyn2(),
        &SaConfig {
            iterations: 3,
            proposals: 2,
            seed: 0x5E,
            ..SaConfig::default()
        },
    );
    for (i, it) in run.trace.iterations.iter().enumerate() {
        rows.push(format!(
            "search,{i},{},{:.6},{}",
            it.recipe, it.objective, it.accepted
        ));
    }

    // GIN training (2 epochs at a tiny profile).
    let stats = train(
        &mut GinClassifier::new(5, 8, 2, 2),
        &tiny_dataset(),
        &TrainConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 5e-3,
            seed: 7,
        },
    );
    for (e, loss) in stats.epoch_losses.iter().enumerate() {
        rows.push(format!("train,{e},{loss:.6}"));
    }
    rows
}

/// Validates one JSONL event log; returns the set of pool workers seen.
fn check_jsonl(path: &Path) -> BTreeSet<u64> {
    let text = std::fs::read_to_string(path).expect("jsonl written");
    assert!(!text.is_empty(), "trace log has events");
    let mut span_stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut workers = BTreeSet::new();
    let mut kinds = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v = parse(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        let thread = v.get("thread").and_then(Value::as_u64).expect("thread");
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .expect("kind")
            .to_string();
        assert!(
            v.get("t_us").and_then(Value::as_u64).is_some(),
            "t_us: {line}"
        );
        match kind.as_str() {
            "span_open" => {
                let name = v.get("name").and_then(Value::as_str).expect("name");
                span_stacks
                    .entry(thread)
                    .or_default()
                    .push(name.to_string());
            }
            "span_close" => {
                let name = v.get("name").and_then(Value::as_str).expect("name");
                let popped = span_stacks.entry(thread).or_default().pop();
                assert_eq!(popped.as_deref(), Some(name), "LIFO span close: {line}");
            }
            "pool_job" => {
                workers.insert(v.get("worker").and_then(Value::as_u64).expect("worker"));
            }
            _ => {}
        }
        kinds.insert(kind);
    }
    for (thread, stack) in &span_stacks {
        assert!(
            stack.len() <= 1,
            "thread {thread} ends with unclosed spans: {stack:?}"
        );
    }
    for expected in [
        "span_open",
        "span_close",
        "pool_job",
        "pool_batch",
        "search_step",
        "train_epoch",
    ] {
        assert!(kinds.contains(expected), "no {expected} event in the log");
    }
    workers
}

/// Validates the Chrome trace; returns the pool-worker track ids (both
/// named and carrying job slices).
fn check_chrome(path: &Path) -> BTreeSet<u64> {
    let text = std::fs::read_to_string(path).expect("chrome trace written");
    let v = parse(&text).expect("chrome trace is valid JSON");
    let events = v.as_arr().expect("top-level array");
    let mut named: BTreeSet<u64> = BTreeSet::new();
    let mut sliced: BTreeSet<u64> = BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        let tid = e.get("tid").and_then(Value::as_u64).expect("tid");
        if ph == "M" && tid >= 1000 {
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .expect("thread_name args");
            assert_eq!(name, format!("pool-worker-{}", tid - 1000));
            named.insert(tid);
        }
        if ph == "X" && e.get("cat").and_then(Value::as_str) == Some("pool") {
            sliced.insert(tid);
        }
    }
    assert_eq!(named, sliced, "every worker track is named and has slices");
    named
}

#[test]
fn sinks_are_schema_valid_and_inert() {
    std::env::set_var("ALMOST_JOBS", "2");
    std::env::remove_var("ALMOST_TRACE");
    let dir = std::env::temp_dir().join(format!("almost_telemetry_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // Reference run: telemetry fully disabled.
    let baseline = harness_body();

    // Two traced runs, each with its own trace path.
    let mut worker_tracks: Vec<BTreeSet<u64>> = Vec::new();
    let mut traced_rows: Vec<Vec<String>> = Vec::new();
    for run in 0..2 {
        let jsonl: PathBuf = dir.join(format!("run{run}.jsonl"));
        std::env::set_var("ALMOST_TRACE", &jsonl);
        telemetry::init_harness("telemetry_sinks_it", Some(&dir));
        traced_rows.push(harness_body());
        let report = telemetry::finish().expect("summary report");
        std::env::remove_var("ALMOST_TRACE");

        assert!(report.pool_jobs > 0, "pool jobs aggregated");
        assert!(report.train_epochs == 2, "train epochs aggregated");
        assert!(report.search_steps == 3, "search steps aggregated");

        let workers = check_jsonl(&jsonl);
        assert_eq!(
            workers,
            BTreeSet::from([0, 1]),
            "both ALMOST_JOBS=2 workers executed jobs"
        );
        let tracks = check_chrome(&jsonl.with_extension("trace.json"));
        assert_eq!(
            tracks,
            workers.iter().map(|w| 1000 + w).collect::<BTreeSet<u64>>(),
            "one Chrome track per pool worker at tid = 1000 + worker"
        );
        worker_tracks.push(tracks);
    }
    assert_eq!(
        worker_tracks[0], worker_tracks[1],
        "worker-track ids are stable across runs"
    );

    // Inertness: the data rows are byte-identical traced or not.
    for (run, rows) in traced_rows.iter().enumerate() {
        assert_eq!(
            rows, &baseline,
            "run {run}: CSV rows differ under ALMOST_TRACE"
        );
    }

    // The aggregator's BENCH json parses and carries the pool totals.
    let bench_json =
        std::fs::read_to_string(dir.join("BENCH_telemetry_sinks_it.json")).expect("BENCH json");
    let v = parse(&bench_json).expect("BENCH json parses");
    assert_eq!(
        v.get("name").and_then(Value::as_str),
        Some("telemetry_sinks_it")
    );
    assert!(
        v.get("pool")
            .and_then(|p| p.get("jobs"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0
    );

    std::env::remove_var("ALMOST_JOBS");
    let _ = std::fs::remove_dir_all(&dir);
}
