//! End-to-end SAT-attack correctness: for RLL and MUX locking at key sizes
//! 8/16/32, the recovered key must *functionally* unlock the circuit —
//! `apply_key` with the recovered bits followed by a SAT CEC against the
//! original design.

use almost_repro::attacks::{AttackTarget, OracleGuidedAttack, SatAttack, SatAttackConfig};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, CircuitOracle, LockedCircuit, LockingScheme, MuxLock, Rll};
use almost_repro::sat::{check_equivalence, Equivalence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the exact attack on the raw locked netlist and SAT-verifies that
/// the recovered key restores the original function.
fn assert_exact_recovery(design: &almost_repro::aig::Aig, locked: &LockedCircuit) {
    let oracle = CircuitOracle::from_locked(locked);
    let run = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    assert!(run.proved_exact, "DIP loop must reach the UNSAT proof");
    let unlocked = apply_key(&locked.aig, locked.key_input_start, &run.recovered);
    assert_eq!(
        check_equivalence(design, &unlocked),
        Equivalence::Equivalent,
        "recovered key must unlock the design"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn rll_keys_are_recovered_across_sizes(seed in 0u64..1000) {
        let design = IscasBenchmark::C432.build();
        for key_size in [8usize, 16, 32] {
            let mut rng = StdRng::seed_from_u64(seed ^ key_size as u64);
            let locked = Rll::new(key_size).lock(&design, &mut rng).expect("lockable");
            assert_exact_recovery(&design, &locked);
        }
    }

    #[test]
    fn mux_keys_are_recovered_across_sizes(seed in 0u64..1000) {
        let design = IscasBenchmark::C432.build();
        for key_size in [8usize, 16, 32] {
            let mut rng = StdRng::seed_from_u64(seed ^ (key_size as u64).rotate_left(17));
            let locked = MuxLock::new(key_size).lock(&design, &mut rng).expect("lockable");
            assert_exact_recovery(&design, &locked);
        }
    }
}

#[test]
fn sat_attack_defeats_rll_through_the_full_target_pipeline() {
    // The paper-shaped scenario: locked, then synthesised with resyn2, then
    // attacked through the trait API with ground-truth scoring.
    let design = IscasBenchmark::C880.build();
    let mut rng = StdRng::seed_from_u64(0x880);
    let locked = Rll::new(16).lock(&design, &mut rng).expect("lockable");
    let target = AttackTarget::new(locked, almost_repro::aig::Script::resyn2());
    let oracle = CircuitOracle::from_locked(&target.locked);
    let outcome = SatAttack::exact().attack_with_oracle(&target, &oracle);
    assert!(outcome.proved_exact);
    assert!(
        outcome.functionally_correct,
        "oracle access defeats RLL regardless of the recipe"
    );
    let unlocked = apply_key(
        &target.deployed,
        target.locked.key_input_start,
        &outcome.recovered,
    );
    assert_eq!(
        check_equivalence(&design, &unlocked),
        Equivalence::Equivalent
    );
}

#[test]
fn approximate_mode_converges_and_logs_dip_trajectory() {
    let design = IscasBenchmark::C432.build();
    let mut rng = StdRng::seed_from_u64(0x432);
    let locked = Rll::new(16).lock(&design, &mut rng).expect("lockable");
    let target = AttackTarget::new(locked, almost_repro::aig::Script::resyn2());
    let oracle = CircuitOracle::from_locked(&target.locked);
    let attack = SatAttack::new(SatAttackConfig::approximate(4, 64));
    let outcome = attack.attack_with_oracle(&target, &oracle);
    let counts = outcome.dip_counts();
    assert!(!counts.is_empty(), "per-iteration DIP log required");
    assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    assert!(outcome.oracle_queries >= outcome.dip_count());
}
