//! Technology-mapping integration tests: the mapped netlist must agree
//! with the source AIG on every benchmark, and PPA must behave sanely.

use almost_repro::circuits::IscasBenchmark;
use almost_repro::netlist::{analyze, map_aig, CellLibrary, MapConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn mapping_agrees_with_aig_on_all_benchmarks() {
    let lib = CellLibrary::nangate45();
    for bench in IscasBenchmark::ALL {
        let aig = bench.build();
        let nl = map_aig(&aig, &lib, &MapConfig::no_opt());
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let ins: Vec<bool> = (0..aig.num_inputs()).map(|_| rng.random()).collect();
            assert_eq!(
                aig.eval(&ins),
                nl.eval(&lib, &ins),
                "{bench}: mapped netlist diverges"
            );
        }
    }
}

#[test]
fn extreme_opt_reduces_or_matches_area() {
    let lib = CellLibrary::nangate45();
    for bench in [
        IscasBenchmark::C432,
        IscasBenchmark::C1355,
        IscasBenchmark::C1908,
    ] {
        let aig = bench.build();
        let plain = map_aig(&aig, &lib, &MapConfig::no_opt());
        let opt = map_aig(&aig, &lib, &MapConfig::extreme_opt());
        let area = |nl: &almost_repro::netlist::MappedNetlist| -> f64 {
            nl.gates().iter().map(|g| lib.cell(g.cell).area()).sum()
        };
        assert!(
            area(&opt) <= area(&plain) * 1.05 + 1.0,
            "{bench}: +opt area {} vs -opt {}",
            area(&opt),
            area(&plain)
        );
    }
}

#[test]
fn ppa_reports_are_consistent_across_seeds() {
    let lib = CellLibrary::nangate45();
    let aig = IscasBenchmark::C880.build();
    let nl = map_aig(&aig, &lib, &MapConfig::no_opt());
    let a = analyze(&nl, &aig, &lib, 8, 1);
    let b = analyze(&nl, &aig, &lib, 8, 2);
    // Area and delay are deterministic; power depends on simulated
    // activity and must agree within a few percent across seeds.
    assert_eq!(a.area, b.area);
    assert_eq!(a.delay, b.delay);
    let rel = (a.power - b.power).abs() / a.power.max(1e-9);
    assert!(
        rel < 0.05,
        "power estimate unstable: {} vs {}",
        a.power,
        b.power
    );
}

#[test]
fn synthesis_reduces_mapped_area_on_redundant_designs() {
    use almost_repro::aig::Script;
    let lib = CellLibrary::nangate45();
    let aig = IscasBenchmark::C1355.build();
    let synth = Script::resyn2().apply(&aig);
    let nl_before = map_aig(&aig, &lib, &MapConfig::no_opt());
    let nl_after = map_aig(&synth, &lib, &MapConfig::no_opt());
    let area = |nl: &almost_repro::netlist::MappedNetlist| -> f64 {
        nl.gates().iter().map(|g| lib.cell(g.cell).area()).sum()
    };
    assert!(
        area(&nl_after) < area(&nl_before),
        "resyn2 should shrink mapped area: {} -> {}",
        area(&nl_before),
        area(&nl_after)
    );
}
