//! The batched search engine's determinism contract, end to end.
//!
//! Two pins, both against the real proxy-scoring stack (locked circuit,
//! trained GIN proxy, locality extraction):
//!
//! 1. **`proposals = 1` reproduces the serial annealer bit-for-bit** —
//!    recipes, objectives, acceptance flags and best-so-far of
//!    [`generate_secure_recipe`]'s engine run equal a hand-rolled
//!    pre-refactor loop: `sa::anneal` over a closure that applies the
//!    recipe directly and scores it with the serial
//!    [`ProxyModel::predict_accuracy`].
//! 2. **Any `proposals` is worker-count-invariant** — `K = 3` traces are
//!    bit-identical for `ALMOST_JOBS` ∈ {1, 2, 8}, on both the fused
//!    GIN objective and a cheap structural objective.
//!
//! One `#[test]` only: the test mutates the process-global `ALMOST_JOBS`
//! variable, so nothing may run concurrently with it.

use almost_repro::aig::Aig;
use almost_repro::almost::{
    anneal, generate_secure_recipe, train_proxy, ProxyConfig, ProxyKind, Recipe, SaConfig, Score,
    SearchEngine, SearchObjective,
};
use almost_repro::attacks::subgraph::SubgraphConfig;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{LockedCircuit, LockingScheme, Rll};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn locked_c432() -> LockedCircuit {
    let mut rng = StdRng::seed_from_u64(3);
    Rll::new(16)
        .lock(&IscasBenchmark::C432.build(), &mut rng)
        .expect("lockable")
}

fn tiny_proxy(locked: &LockedCircuit) -> almost_repro::almost::ProxyModel {
    train_proxy(
        locked,
        ProxyKind::Resyn2,
        &ProxyConfig {
            initial_samples: 48,
            epochs: 10,
            period: 10,
            hidden: 8,
            subgraph: SubgraphConfig {
                hops: 2,
                max_nodes: 24,
            },
            ..ProxyConfig::default()
        },
    )
}

/// A cheap pure-structure objective for the worker-count sweep.
struct StructuralObjective;

impl SearchObjective for StructuralObjective {
    fn score_batch(&self, candidates: &[Arc<Aig>]) -> Vec<Score> {
        candidates
            .iter()
            .map(|aig| Score::plain(aig.num_ands() as f64 + 0.25 * aig.depth() as f64))
            .collect()
    }
}

fn assert_traces_bitwise_equal(
    label: &str,
    got: &almost_repro::almost::SaTrace,
    want: &almost_repro::almost::SaTrace,
) {
    assert_eq!(
        got.iterations.len(),
        want.iterations.len(),
        "{label}: trace length"
    );
    for (i, (g, w)) in got.iterations.iter().zip(&want.iterations).enumerate() {
        assert_eq!(g.recipe, w.recipe, "{label}: recipe at {i}");
        assert_eq!(
            g.objective.to_bits(),
            w.objective.to_bits(),
            "{label}: objective at {i}"
        );
        assert_eq!(g.accepted, w.accepted, "{label}: acceptance at {i}");
        assert_eq!(
            g.best_objective.to_bits(),
            w.best_objective.to_bits(),
            "{label}: best-so-far at {i}"
        );
    }
}

#[test]
fn engine_traces_are_deterministic() {
    let locked = locked_c432();
    let proxy = tiny_proxy(&locked);

    // --- Pin 1: K = 1 equals the pre-refactor serial loop, on the real
    // proxy objective (direct apply + serial per-graph GIN accuracy).
    std::env::set_var("ALMOST_JOBS", "1");
    let sa = SaConfig {
        iterations: 6,
        proposals: 1,
        seed: 0xD1,
        ..SaConfig::default()
    };
    let mut reference_series = Vec::new();
    let (reference_best, reference_trace) = anneal(
        Recipe::resyn2(),
        |recipe: &Recipe| {
            let deployed = recipe.apply(&locked.aig);
            let acc = proxy.predict_accuracy(&locked, &deployed);
            reference_series.push(acc);
            (acc - 0.5).abs()
        },
        &sa,
    );
    let result = generate_secure_recipe(&locked, &proxy, &sa);
    assert_eq!(result.recipe, reference_best, "K=1: best recipe");
    assert_traces_bitwise_equal("K=1 vs serial", &result.trace, &reference_trace);
    // The accuracy series (trace-aligned, initial dropped) must match the
    // closure's observations bit-for-bit too.
    assert_eq!(result.accuracy_series.len(), reference_series.len() - 1);
    for (i, (got, want)) in result
        .accuracy_series
        .iter()
        .zip(&reference_series[1..])
        .enumerate()
    {
        assert_eq!(got.to_bits(), want.to_bits(), "K=1: accuracy at {i}");
    }

    // --- Pin 2: K = 3 worker-count invariance on the fused GIN
    // objective and on a structural objective.
    let sa_k3 = SaConfig {
        iterations: 4,
        proposals: 3,
        seed: 0xD2,
        ..SaConfig::default()
    };
    let mut proxy_runs = Vec::new();
    let mut structural_runs = Vec::new();
    for jobs in ["1", "2", "8"] {
        std::env::set_var("ALMOST_JOBS", jobs);
        proxy_runs.push(generate_secure_recipe(&locked, &proxy, &sa_k3));
        let objective = StructuralObjective;
        let mut engine = SearchEngine::new(locked.aig.clone(), &objective);
        structural_runs.push(engine.anneal(Recipe::resyn2(), &sa_k3));
    }
    std::env::remove_var("ALMOST_JOBS");
    assert_eq!(
        proxy_runs[0].trace.iterations.len(),
        sa_k3.iterations * sa_k3.proposals,
        "K>1 trace records every candidate"
    );
    for (run, jobs) in proxy_runs[1..].iter().zip(["2", "8"]) {
        assert_eq!(run.recipe, proxy_runs[0].recipe, "jobs={jobs}: best recipe");
        assert_traces_bitwise_equal(
            &format!("proxy K=3 jobs={jobs} vs jobs=1"),
            &run.trace,
            &proxy_runs[0].trace,
        );
        for (i, (got, want)) in run
            .accuracy_series
            .iter()
            .zip(&proxy_runs[0].accuracy_series)
            .enumerate()
        {
            assert_eq!(got.to_bits(), want.to_bits(), "jobs={jobs}: accuracy {i}");
        }
        // Cache behaviour is part of the contract: same hits/misses.
        assert_eq!(run.engine.cache, proxy_runs[0].engine.cache, "jobs={jobs}");
    }
    for (run, jobs) in structural_runs[1..].iter().zip(["2", "8"]) {
        assert_traces_bitwise_equal(
            &format!("structural K=3 jobs={jobs} vs jobs=1"),
            &run.trace,
            &structural_runs[0].trace,
        );
    }

    // The fused batch scorer and the serial scorer agree on the K=3
    // winner's deployment too (sanity link between pins 1 and 2).
    let deployed = proxy_runs[0].recipe.apply(&locked.aig);
    let graphs_acc = proxy.predict_accuracy(&locked, &deployed);
    assert_eq!(
        proxy_runs[0].accuracy.to_bits(),
        graphs_acc.to_bits(),
        "recorded best accuracy equals a fresh serial prediction"
    );
}
