//! Cross-crate integration tests: every synthesis transformation must be
//! SAT-proved equivalence-preserving, on both random AIGs (property-based)
//! and the generated ISCAS-profile benchmarks.

use almost_repro::aig::{Aig, Lit, Pass, Script};
use almost_repro::almost::{Recipe, RecipeTrie};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::sat::{check_equivalence, Equivalence};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_aig(num_inputs: usize, num_ands: usize, seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input()).collect();
    let mut guard = 0;
    while aig.num_ands() < num_ands && guard < num_ands * 20 {
        guard += 1;
        let a = pool[rng.random_range(0..pool.len())];
        let b = pool[rng.random_range(0..pool.len())];
        let lit = aig.and(
            a.xor_complement(rng.random()),
            b.xor_complement(rng.random()),
        );
        if !lit.is_const() {
            pool.push(lit);
        }
    }
    for i in 0..3.min(pool.len()) {
        let lit = pool[pool.len() - 1 - i];
        aig.add_output(lit);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_pass_is_sat_equivalent(seed in 0u64..10_000, ands in 20usize..80) {
        let aig = random_aig(6, ands, seed);
        for pass in Pass::ALL {
            let out = pass.apply(&aig);
            prop_assert_eq!(
                check_equivalence(&aig, &out),
                Equivalence::Equivalent,
                "{} broke equivalence (seed {})", pass, seed
            );
        }
    }

    #[test]
    fn random_recipes_are_sat_equivalent(seed in 0u64..10_000) {
        let aig = random_aig(7, 60, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let recipe = Recipe::random(6, &mut rng);
        let out = recipe.apply(&aig);
        prop_assert_eq!(check_equivalence(&aig, &out), Equivalence::Equivalent);
    }

    #[test]
    fn trie_cache_equals_direct_application(seed in 0u64..10_000) {
        let aig = random_aig(6, 40, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trie = RecipeTrie::new(aig.clone());
        let mut recipe = Recipe::random(5, &mut rng);
        for _ in 0..3 {
            let cached = trie.apply(&recipe);
            let direct = recipe.apply(&aig);
            prop_assert_eq!(cached.num_ands(), direct.num_ands());
            prop_assert_eq!(check_equivalence(&cached, &direct), Equivalence::Equivalent);
            recipe = recipe.mutate(&mut rng);
        }
    }

    /// Sibling-order access: mutate one base recipe into a family of
    /// siblings, visit them in a scrambled order with revisits, and hold
    /// the trie to `Recipe::apply` ground truth throughout. This is the
    /// pattern the old linear prefix chain lost on (truncate on
    /// divergence); the trie must both stay correct and stop recomputing
    /// once the family is cached.
    #[test]
    fn trie_cache_survives_sibling_order_access(seed in 0u64..10_000) {
        let aig = random_aig(6, 40, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51B);
        let mut trie = RecipeTrie::new(aig.clone());
        let base = Recipe::random(4, &mut rng);
        let family: Vec<Recipe> = (0..4).map(|_| base.mutate(&mut rng)).collect();
        let mut order: Vec<usize> = (0..family.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..i + 1));
        }
        // First sweep in scrambled order, then a revisit sweep.
        for &i in order.iter().chain(order.iter().rev()) {
            let cached = trie.apply(&family[i]);
            prop_assert_eq!(cached.num_ands(), family[i].apply(&aig).num_ands());
        }
        let after_sweeps = trie.stats();
        // The revisit sweep must have been pure hits.
        prop_assert!(after_sweeps.hits as usize >= family.len() * 4);
        let spot = &family[order[0]];
        prop_assert_eq!(
            check_equivalence(&trie.apply(spot), &spot.apply(&aig)),
            Equivalence::Equivalent
        );
        prop_assert_eq!(trie.stats().misses, after_sweeps.misses, "revisit is all hits");
    }

    /// Forced evictions: a node budget smaller than one recipe makes
    /// every access evict; results must still equal direct application.
    #[test]
    fn trie_cache_equals_direct_application_under_eviction(seed in 0u64..10_000) {
        let aig = random_aig(6, 40, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE71C);
        let mut trie = RecipeTrie::with_budget(aig.clone(), 3);
        let mut recipe = Recipe::random(5, &mut rng);
        for _ in 0..3 {
            let cached = trie.apply(&recipe);
            let direct = recipe.apply(&aig);
            prop_assert_eq!(cached.num_ands(), direct.num_ands());
            prop_assert_eq!(check_equivalence(&cached, &direct), Equivalence::Equivalent);
            prop_assert!(trie.stats().live_nodes <= 3);
            recipe = recipe.mutate(&mut rng);
        }
        prop_assert!(trie.stats().evictions > 0, "budget 3 must evict on length-5 recipes");
    }
}

#[test]
fn resyn2_is_sat_equivalent_on_benchmarks() {
    // The two smallest generated benchmarks keep the CEC affordable.
    for bench in [IscasBenchmark::C432, IscasBenchmark::C499] {
        let aig = bench.build();
        let out = Script::resyn2().apply(&aig);
        assert_eq!(
            check_equivalence(&aig, &out),
            Equivalence::Equivalent,
            "resyn2 broke {bench}"
        );
        assert!(
            out.num_ands() <= aig.num_ands(),
            "resyn2 should not grow {bench}: {} -> {}",
            aig.num_ands(),
            out.num_ands()
        );
    }
}

#[test]
fn all_benchmarks_survive_every_pass_by_simulation() {
    for bench in IscasBenchmark::ALL {
        let aig = bench.build();
        for pass in [Pass::Balance, Pass::Rewrite, Pass::Resub] {
            let out = pass.apply(&aig);
            assert!(
                almost_repro::aig::sim::probably_equivalent(&aig, &out, 16, 3),
                "{pass} broke {bench}"
            );
        }
    }
}
