//! Telemetry overhead envelope (ISSUE 6 satellite): "off by default and
//! zero-cost when off" is asserted, not assumed.
//!
//! A counting `#[global_allocator]` pins the *exact* allocation count of
//! a deterministic GIN training run, so the test proves:
//!
//! - the disabled path adds **zero** allocations to the trainer hot loop
//!   (two identical runs allocate identically, before telemetry was ever
//!   initialised and again after a traced harness has been torn down);
//! - the enabled path really does emit (it allocates strictly more — the
//!   counter is wired, not trivially passing);
//! - in release builds, the traced run stays inside a generous wall-time
//!   envelope of the untraced run, so event construction can never
//!   dominate the training it observes.
//!
//! One `#[test]` only: the test mutates the process-global `ALMOST_JOBS`
//! and `ALMOST_TRACE` variables and the global telemetry registry, so
//! nothing may run concurrently with it. `ALMOST_JOBS=1` keeps the run
//! on the calling thread (the pool's serial bypass) — thread spawns
//! would make allocation counts nondeterministic.

use almost_repro::ml::gin::{GinClassifier, Graph};
use almost_repro::ml::tensor::Matrix;
use almost_repro::ml::train::{train, TrainConfig, TrainStats};
use almost_repro::telemetry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates to `System` verbatim; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn dataset() -> Vec<Graph> {
    let mut state = 0x0BEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..48)
        .map(|_| {
            let nodes = 8 + (next() % 17) as usize;
            let label = next() % 2 == 0;
            let mut f = Matrix::zeros(nodes, 7);
            for r in 0..nodes {
                f.set(r, (next() % 7) as usize, 1.0);
                if label {
                    f.set(r, 0, 1.0);
                }
            }
            let edges: Vec<(usize, usize)> = (1..nodes).map(|v| (v / 2, v)).collect();
            Graph::from_edges(nodes, &edges, f, label)
        })
        .collect()
}

/// One deterministic training run; returns (allocations, wall, stats).
fn measured_run(data: &[Graph]) -> (u64, f64, TrainStats) {
    let mut model = GinClassifier::new(7, 12, 2, 2);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 16,
        learning_rate: 5e-3,
        seed: 11,
    };
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let stats = train(&mut model, data, &config);
    let wall = start.elapsed().as_secs_f64();
    (ALLOCS.load(Ordering::Relaxed) - before, wall, stats)
}

#[test]
fn disabled_telemetry_adds_zero_allocations_to_training() {
    std::env::set_var("ALMOST_JOBS", "1");
    std::env::remove_var("ALMOST_TRACE");
    let data = dataset();

    // Warm up process-level lazy state, then pin the disabled baseline.
    let _ = measured_run(&data);
    let (baseline_allocs, baseline_wall, baseline_stats) = measured_run(&data);
    let (repeat_allocs, _, repeat_stats) = measured_run(&data);
    assert_eq!(
        baseline_allocs, repeat_allocs,
        "identical disabled runs must allocate identically"
    );
    assert_eq!(baseline_stats.tape_ops, repeat_stats.tape_ops);

    // Traced run: JSONL + Chrome + summary sinks, per-epoch events.
    let dir = std::env::temp_dir().join(format!("almost_telemetry_oh_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let jsonl = dir.join("overhead.jsonl");
    std::env::set_var("ALMOST_TRACE", &jsonl);
    telemetry::init_harness("telemetry_overhead_it", Some(&dir));
    let (traced_allocs, traced_wall, traced_stats) = measured_run(&data);
    telemetry::finish().expect("summary report");
    std::env::remove_var("ALMOST_TRACE");
    assert_eq!(
        traced_stats.tape_ops, baseline_stats.tape_ops,
        "tracing must not change the computation"
    );
    assert!(
        traced_allocs > baseline_allocs,
        "the traced run must visibly allocate for its events \
         (traced {traced_allocs} vs baseline {baseline_allocs}) — otherwise \
         this test is not measuring anything"
    );

    // After teardown the disabled path is bit-for-bit free again.
    let (after_allocs, _, _) = measured_run(&data);
    assert_eq!(
        after_allocs, baseline_allocs,
        "after `telemetry::finish()` the hot loop must allocate exactly \
         as if telemetry had never been enabled (zero-residue teardown)"
    );

    eprintln!(
        "allocs: disabled {baseline_allocs}, traced {traced_allocs}; \
         wall: disabled {:.1} ms, traced {:.1} ms",
        baseline_wall * 1e3,
        traced_wall * 1e3
    );
    if almost_repro::testutil::release_mode("telemetry wall-time envelope") {
        // Generous: per-epoch events are a handful of small allocations
        // against thousands of tape ops, so even 2x would be absurd.
        assert!(
            traced_wall < baseline_wall * 2.0 + 0.05,
            "traced training took {traced_wall:.3}s vs {baseline_wall:.3}s \
             untraced — telemetry overhead blew the envelope"
        );
    }

    std::env::remove_var("ALMOST_JOBS");
    let _ = std::fs::remove_dir_all(&dir);
}
