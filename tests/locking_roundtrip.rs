//! Locking integration tests: RLL and MUX locking across benchmarks and
//! key sizes, with and without synthesis in between.

use almost_repro::aig::sim::probably_equivalent;
use almost_repro::almost::Recipe;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, relock, LockingScheme, MuxLock, Rll};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rll_roundtrip_across_key_sizes(seed in 0u64..1000, key_size in 4usize..48) {
        let base = IscasBenchmark::C432.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = Rll::new(key_size).lock(&base, &mut rng).expect("lockable");
        prop_assert_eq!(locked.key_size(), key_size);
        prop_assert_eq!(locked.aig.num_inputs(), base.num_inputs() + key_size);
        let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
        prop_assert!(probably_equivalent(&base, &restored, 16, seed));
    }

    #[test]
    fn single_flipped_bit_corrupts_some_output(seed in 0u64..1000) {
        let base = IscasBenchmark::C432.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let locked = Rll::new(16).lock(&base, &mut rng).expect("lockable");
        let mut wrong = locked.key.bits().to_vec();
        wrong[0] = !wrong[0];
        let broken = apply_key(&locked.aig, locked.key_input_start, &wrong);
        // An XOR key gate guarantees the flipped bit inverts an internal
        // signal; unless that cone is dead, outputs differ somewhere.
        prop_assert!(!probably_equivalent(&base, &broken, 32, seed ^ 1));
    }
}

#[test]
fn rll_roundtrip_survives_synthesis_on_every_paper_benchmark() {
    for bench in IscasBenchmark::PAPER_SEVEN {
        let base = bench.build();
        let mut rng = StdRng::seed_from_u64(7);
        let locked = Rll::new(64).lock(&base, &mut rng).expect("lockable");
        let deployed = Recipe::resyn2().apply(&locked.aig);
        let restored = apply_key(&deployed, locked.key_input_start, locked.key.bits());
        assert!(
            probably_equivalent(&base, &restored, 16, 11),
            "{bench}: key no longer unlocks after resyn2"
        );
    }
}

#[test]
fn mux_locking_roundtrip() {
    let base = IscasBenchmark::C880.build();
    let mut rng = StdRng::seed_from_u64(5);
    let locked = MuxLock::new(24).lock(&base, &mut rng).expect("lockable");
    let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
    assert!(probably_equivalent(&base, &restored, 16, 2));
}

#[test]
fn relocking_preserves_unlockability_of_both_generations() {
    let base = IscasBenchmark::C1355.build();
    let mut rng = StdRng::seed_from_u64(9);
    let first = Rll::new(16).lock(&base, &mut rng).expect("lockable");
    let second = relock(&Rll::new(8), &first.aig, &mut rng).expect("relockable");
    // Apply the second key, then the first: original function restored.
    let after_second = apply_key(&second.aig, second.key_input_start, second.key.bits());
    let after_both = apply_key(&after_second, first.key_input_start, first.key.bits());
    assert!(probably_equivalent(&base, &after_both, 16, 3));
}
