//! DIP-count regression tests: the paper-level security claims of the
//! SAT-resilient locking family as unit-testable floors.
//!
//! - Anti-SAT with an `n`-input block forces the exact SAT attack to at
//!   least `2^n` DIPs (one per `Kl1` group).
//! - SARLock with an `n`-bit key forces at least `2^n − 1` DIPs (one per
//!   wrong key).
//! - Plain RLL at the same sizes stays under a small constant — the
//!   contrast that makes the floors meaningful.
//!
//! Every attack run has a `max_iterations` hang-guard a little above the
//! floor, so a regression that *breaks* a defence fails fast instead of
//! hanging the suite. Key size 8 (256-DIP loops) runs everywhere; the
//! `ALMOST_SCALE=ci` release job additionally covers it with the paper's
//! conflict budgets (see `.github/workflows/ci.yml`).

use almost_repro::attacks::{SatAttack, SatAttackConfig, SatAttackMode, SatAttackRun};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{AntiSat, CircuitOracle, LockedCircuit, LockingScheme, Rll, SarLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the exact attack with a hang-guard just above the expected floor.
fn exact_attack(locked: &LockedCircuit, max_iterations: usize) -> SatAttackRun {
    // Floors hold for any DIP trajectory, but the hang-guards sit close
    // above them: pin the serial reference width so a racing portfolio
    // (multi-core CI) cannot wander near a guard nondeterministically.
    std::env::set_var("ALMOST_SOLVERS", "1");
    let oracle = CircuitOracle::from_locked(locked);
    SatAttack::new(SatAttackConfig {
        mode: SatAttackMode::Exact,
        max_iterations,
        seed: 0x5A7,
    })
    .run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    )
}

fn lock_with(scheme: &dyn LockingScheme, seed: u64) -> LockedCircuit {
    let design = IscasBenchmark::C432.build();
    let mut rng = StdRng::seed_from_u64(seed);
    scheme.lock(&design, &mut rng).expect("lockable")
}

/// Key sizes under test; the ISSUE-level contract is 4/6/8.
const KEY_SIZES: [usize; 3] = [4, 6, 8];

#[test]
fn sarlock_needs_at_least_2_to_the_k_minus_1_dips() {
    for k in KEY_SIZES {
        let locked = lock_with(&SarLock::new(k), 0x5AC ^ k as u64);
        let floor = (1usize << (k - 1)).max(1);
        let run = exact_attack(&locked, (1 << k) + 16);
        assert!(
            run.proved_exact,
            "k={k}: the exact attack must finish inside the hang-guard"
        );
        assert!(
            run.iterations.len() >= floor,
            "k={k}: SARLock fell in {} DIPs, below the 2^(k-1) = {floor} floor",
            run.iterations.len()
        );
        assert!(
            run.accounting_consistent(),
            "k={k}: DIP ledger must reconcile"
        );
    }
}

#[test]
fn anti_sat_needs_at_least_2_to_the_k_minus_1_dips() {
    for k in KEY_SIZES {
        let locked = lock_with(&AntiSat::new(k), 0xA57 ^ k as u64);
        assert_eq!(locked.key_size(), 2 * k, "Anti-SAT inserts 2n key bits");
        let floor = (1usize << (k - 1)).max(1);
        let run = exact_attack(&locked, (1 << k) + 16);
        assert!(
            run.proved_exact,
            "k={k}: the exact attack must finish inside the hang-guard"
        );
        assert!(
            run.iterations.len() >= floor,
            "k={k}: Anti-SAT fell in {} DIPs, below the 2^(k-1) = {floor} floor",
            run.iterations.len()
        );
        assert!(
            run.accounting_consistent(),
            "k={k}: DIP ledger must reconcile"
        );
    }
}

#[test]
fn anti_sat_floor_is_the_full_2_to_the_k_group_count() {
    // Sharper than the shared floor: every one of the 2^k `Kl1` groups
    // must be ruled out before the miter goes UNSAT.
    let k = 6;
    let locked = lock_with(&AntiSat::new(k), 0xA57F);
    let run = exact_attack(&locked, (1 << k) + 16);
    assert!(run.proved_exact);
    assert_eq!(
        run.iterations.len(),
        1 << k,
        "Anti-SAT requires exactly one DIP per Kl1 group"
    );
}

#[test]
fn sarlock_floor_is_exactly_every_wrong_key() {
    let k = 6;
    let locked = lock_with(&SarLock::new(k), 0x5ACF);
    let run = exact_attack(&locked, (1 << k) + 16);
    assert!(run.proved_exact);
    assert_eq!(
        run.iterations.len(),
        (1 << k) - 1,
        "SARLock requires exactly one DIP per wrong key"
    );
}

#[test]
fn plain_rll_stays_under_a_small_constant_at_the_same_sizes() {
    for k in KEY_SIZES {
        let locked = lock_with(&Rll::new(k), 0x811 ^ k as u64);
        let run = exact_attack(&locked, 1 << k);
        assert!(run.proved_exact, "k={k}: RLL must fall inside the budget");
        assert!(
            run.iterations.len() <= 24,
            "k={k}: RLL needed {} DIPs — far from exponential, but above the \
             small-constant ceiling this regression pins",
            run.iterations.len()
        );
        // The floors above are only meaningful while RLL stays strictly
        // below them at the same key size.
        let floor = (1usize << (k - 1)).max(1);
        assert!(
            run.iterations.len() < floor,
            "k={k}: RLL DIP count crossed the resilient floor"
        );
    }
}
