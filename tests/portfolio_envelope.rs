//! Release-mode envelope for the SAT portfolio: racing must change
//! wall-clock, never answers.
//!
//! Three walls, exercised on a random 3-SAT corpus spanning the ~4.26
//! phase transition (both verdicts, conflict-heavy instances) plus the
//! c1355 RLL-16 exact SAT attack from the solver-stats envelope:
//!
//! 1. **Verdict parity** — every width-4 portfolio verdict equals the
//!    serial reference's, and the width-4 attack recovers a functionally
//!    correct key exactly like the width-1 run.
//! 2. **Race exercised** — the portfolio actually races: glue clauses
//!    are published, and on hard instances imported by siblings; the
//!    winner index is reported per instance.
//! 3. **Cancellation latency** — losers park within a generous pinned
//!    bound after the winner finishes (the stop flag is polled every
//!    1024 propagations, so seconds would mean the flag is not wired).
//!
//! Debug builds skip: the corpus and the c1355 attack are calibrated for
//! `--release`, which is what the CI perf-smoke job runs
//! (`cargo test --release --test portfolio_envelope`).

use almost_repro::attacks::SatAttack;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, CircuitOracle, LockingScheme, Rll};
use almost_sat::{check_equivalence, Equivalence, PortfolioSolver, SatLit, SatResult, Solver};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Upper bound on the worst winner-finish → losers-parked latency. The
/// poll period is microseconds of work; the bound only has to absorb
/// scheduler jitter on an oversubscribed CI core, not real solving.
const CANCEL_LATENCY_BOUND_US: u64 = 5_000_000;

/// Random 3-SAT at a given clause/variable ratio (percent).
fn random_3sat(rng: &mut StdRng, vars: u32, ratio_pct: u32) -> Vec<Vec<SatLit>> {
    let num_clauses = (vars * ratio_pct) / 100;
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| SatLit::new(rng.random::<u32>() % vars, rng.random::<bool>()))
                .collect()
        })
        .collect()
}

/// Pigeonhole `holes+1` into `holes`: UNSAT with an exponential resolution
/// proof — the conflict-heavy end of the corpus, where restarts (and so
/// clause imports) are guaranteed plentiful.
fn pigeonhole(holes: usize) -> (u32, Vec<Vec<SatLit>>) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| (p * holes + h) as u32;
    let mut clauses: Vec<Vec<SatLit>> = (0..pigeons)
        .map(|p| (0..holes).map(|h| SatLit::positive(var(p, h))).collect())
        .collect();
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                clauses.push(vec![
                    !SatLit::positive(var(p1, h)),
                    !SatLit::positive(var(p2, h)),
                ]);
            }
        }
    }
    ((pigeons * holes) as u32, clauses)
}

fn load_solver(vars: u32, clauses: &[Vec<SatLit>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..vars {
        s.new_var();
    }
    for cl in clauses {
        s.add_clause(cl);
    }
    s
}

fn load_portfolio(vars: u32, clauses: &[Vec<SatLit>], width: usize) -> PortfolioSolver {
    let mut p = PortfolioSolver::with_width("envelope", width);
    for _ in 0..vars {
        p.new_var();
    }
    for cl in clauses {
        p.add_clause(cl);
    }
    p
}

#[test]
fn portfolio_verdicts_match_serial_and_cancellation_is_prompt() {
    if !almost_repro::testutil::release_mode("portfolio envelope") {
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x0009_047F_0110);
    let mut corpus: Vec<(u32, Vec<Vec<SatLit>>)> = Vec::new();
    // Under, at, and over the phase transition; three seeds each.
    for ratio_pct in [350u32, 426, 500] {
        for _ in 0..6 {
            let vars = 30 + rng.random::<u32>() % 30;
            corpus.push((vars, random_3sat(&mut rng, vars, ratio_pct)));
        }
    }
    corpus.push(pigeonhole(6));
    corpus.push(pigeonhole(7));

    let mut winners: BTreeSet<usize> = BTreeSet::new();
    let mut sat = 0usize;
    let mut unsat = 0usize;
    let mut imported = 0u64;
    let mut exported = 0u64;
    let mut cancel_us_max = 0u64;
    for (i, (vars, clauses)) in corpus.iter().enumerate() {
        let mut reference = load_solver(*vars, clauses);
        let expected = reference.solve(&[]);

        let mut portfolio = load_portfolio(*vars, clauses, 4);
        let got = portfolio.solve(&[]);
        assert_eq!(got, expected, "instance {i}: portfolio verdict diverged");
        match got {
            SatResult::Sat => sat += 1,
            SatResult::Unsat => unsat += 1,
        }
        let stats = portfolio.portfolio_stats();
        winners.insert(stats.last_winner);
        imported += stats.imported;
        exported += stats.exported;
        cancel_us_max = cancel_us_max.max(stats.cancel_us_max);
    }
    eprintln!(
        "portfolio envelope: {} instances ({sat} SAT / {unsat} UNSAT), winners {winners:?}, \
         {exported} glue exported, {imported} imported, worst cancel latency {cancel_us_max}us",
        corpus.len()
    );
    assert!(
        sat >= 2 && unsat >= 2,
        "corpus must span the transition ({sat} SAT / {unsat} UNSAT)"
    );
    assert!(exported > 0, "the racing workers never published glue");
    assert!(
        imported > 0,
        "no worker ever imported glue — restart-boundary exchange is not wired"
    );
    assert!(
        cancel_us_max < CANCEL_LATENCY_BOUND_US,
        "cancellation latency {cancel_us_max}us breaches the {CANCEL_LATENCY_BOUND_US}us bound"
    );
    // The race should be genuinely contested across a diverse corpus; a
    // single eternal winner usually means the siblings never get
    // scheduled (report, don't fail: a 1-core runner can legitimately
    // serialise the short races).
    if winners.len() < 2 {
        eprintln!("portfolio envelope: WARNING — one worker won every race ({winners:?})");
    }

    // The c1355 RLL-16 exact attack (the solver-stats envelope's heavy
    // cell), raced at width 4: same convergence, functionally correct
    // key, race visibly exercised.
    let design = IscasBenchmark::C1355.build();
    let mut lock_rng = StdRng::seed_from_u64(0x1355);
    let locked = Rll::new(16).lock(&design, &mut lock_rng).expect("lockable");
    let oracle = CircuitOracle::from_locked(&locked);

    std::env::set_var("ALMOST_SOLVERS", "4");
    let raced = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    std::env::set_var("ALMOST_SOLVERS", "1");
    let serial = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    std::env::remove_var("ALMOST_SOLVERS");

    assert!(
        serial.proved_exact && raced.proved_exact,
        "both modes reach UNSAT"
    );
    assert_eq!(
        serial.portfolio.races, 0,
        "width 1 is the pinned serial path"
    );
    for (label, run) in [("serial", &serial), ("raced", &raced)] {
        let unlocked = apply_key(&locked.aig, locked.key_input_start, &run.recovered);
        assert_eq!(
            check_equivalence(oracle.design(), &unlocked),
            Equivalence::Equivalent,
            "{label}: recovered key must unlock c1355"
        );
    }
    let ps = raced.portfolio.clone();
    eprintln!(
        "portfolio envelope: c1355 raced attack — {} races, wins {:?}, {} exported, {} imported, \
         worst cancel latency {}us; keys bit-identical: {}",
        ps.races,
        ps.wins,
        ps.exported,
        ps.imported,
        ps.cancel_us_max,
        serial.recovered == raced.recovered
    );
    assert!(ps.races > 0, "the raced attack must actually race");
    assert!(ps.exported > 0, "attack races published no glue");
    assert!(
        ps.cancel_us_max < CANCEL_LATENCY_BOUND_US,
        "attack cancellation latency {}us breaches the bound",
        ps.cancel_us_max
    );
}
