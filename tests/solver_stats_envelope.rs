//! Release-mode behavioural envelope for the CDCL core.
//!
//! SAT/UNSAT agreement alone can hide a heuristic regression (a broken
//! decision order still *eventually* proves the same verdicts — just
//! orders of magnitude slower). This test pins the solver-effort counters
//! of two deterministic exact SAT-attack runs (c432 and c1355, RLL-16,
//! fixed lock seeds) inside generous envelopes, so the VSIDS heap, the
//! restart schedule and the learnt-DB reduction are audited behaviourally:
//! any future heuristic change that blows the work up by an order of
//! magnitude fails here, in the CI `perf-smoke` job, before it lands.
//!
//! Debug builds skip (the envelope is calibrated for `--release`, which is
//! what CI runs; effort counters are build-independent but wall time is
//! not, and the c1355 run is slow unoptimised).

use almost_attacks::SatAttack;
use almost_circuits::IscasBenchmark;
use almost_locking::{CircuitOracle, LockingScheme, Rll};
use almost_sat::SolverStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Inclusive effort envelope; bounds are ~4x around the measured values so
/// only order-of-magnitude regressions (or suspicious collapses) trip it.
struct Envelope {
    bench: IscasBenchmark,
    lock_seed: u64,
    dips: (usize, usize),
    decisions: (u64, u64),
    propagations: (u64, u64),
    conflicts: (u64, u64),
}

fn run_attack(bench: IscasBenchmark, lock_seed: u64) -> (usize, SolverStats) {
    let design = bench.build();
    let mut rng = StdRng::seed_from_u64(lock_seed);
    let locked = Rll::new(16).lock(&design, &mut rng).expect("lockable");
    let oracle = CircuitOracle::from_locked(&locked);
    let run = SatAttack::exact().run(
        &locked.aig,
        locked.key_input_start,
        locked.key_size(),
        &oracle,
    );
    assert!(run.proved_exact, "{bench:?}: exact mode must reach UNSAT");
    (run.iterations.len(), run.solver)
}

fn check(range: (u64, u64), got: u64, what: &str, bench: IscasBenchmark) {
    assert!(
        (range.0..=range.1).contains(&got),
        "{bench:?}: {what} = {got} outside the pinned envelope {range:?} — if a deliberate \
         heuristic change moved it, re-measure and re-pin; an accidental one is a regression"
    );
}

#[test]
fn exact_attack_effort_stays_inside_the_pinned_envelope() {
    if !almost_repro::testutil::release_mode("solver-stats envelope") {
        return;
    }
    // The envelope pins the *serial reference* solver: on multi-core
    // machines the SAT portfolio would race diversified workers and sum
    // their effort, so force the pinned width-1 configuration.
    std::env::set_var("ALMOST_SOLVERS", "1");
    let envelopes = [
        Envelope {
            bench: IscasBenchmark::C432,
            lock_seed: 0x432,
            dips: (2, 32),
            decisions: (800, 13_000),
            propagations: (20_000, 340_000),
            conflicts: (220, 3_600),
        },
        Envelope {
            bench: IscasBenchmark::C1355,
            lock_seed: 0x1355,
            dips: (2, 48),
            decisions: (2_300, 38_000),
            propagations: (85_000, 1_400_000),
            conflicts: (980, 16_000),
        },
    ];
    for e in envelopes {
        let (dips, stats) = run_attack(e.bench, e.lock_seed);
        eprintln!("{:?}: dips={dips} stats={stats:?}", e.bench);
        assert!(
            (e.dips.0..=e.dips.1).contains(&dips),
            "{:?}: DIP count {dips} outside {:?}",
            e.bench,
            e.dips
        );
        check(e.decisions, stats.decisions, "decisions", e.bench);
        check(e.propagations, stats.propagations, "propagations", e.bench);
        check(e.conflicts, stats.conflicts, "conflicts", e.bench);
    }
}
