//! Umbrella crate for the ALMOST (DAC 2023) reproduction.
//!
//! This crate re-exports the workspace members under a single namespace so
//! examples and downstream users can depend on one crate:
//!
//! - [`aig`] — and-inverter-graph synthesis substrate (mini-ABC).
//! - [`sat`] — CDCL SAT solver used for equivalence checking, ATPG, and
//!   the key-conditioned miters of oracle-guided attacks.
//! - [`netlist`] — cell library, technology mapping, and PPA analysis.
//! - [`circuits`] — ISCAS85-profile benchmark circuit generators.
//! - [`locking`] — random logic locking (RLL), bubble pushing, re-locking,
//!   SAT-resilient point functions (Anti-SAT, SARLock) with stacked
//!   compounds, and the activated-IC oracle interface.
//! - [`ml`] — dense tensors, reverse-mode autodiff, GIN layers, Adam.
//! - [`attacks`] — oracle-less attacks (OMLA, SCOPE, redundancy, SnapShot)
//!   and the oracle-guided SAT attack family (DIP loop, AppSAT-style
//!   approximate mode, and the Double-DIP point-function breaker).
//! - [`almost`] — the ALMOST framework: recipes, simulated annealing,
//!   adversarial proxy-model training, security-aware synthesis.
//!
//! The two threat models meet in `attacks::report`: oracle-less attacks
//! are scored per key bit, oracle-guided attacks report DIP counts,
//! oracle queries and an UNSAT-proof/CEC verdict, and
//! [`attacks::render_report`] shows them side by side.
//!
//! # Quickstart
//!
//! ```
//! use almost_repro::circuits::IscasBenchmark;
//! use almost_repro::locking::{LockingScheme, Rll};
//! use almost_repro::almost::Recipe;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let aig = IscasBenchmark::C1355.build();
//! let locked = Rll::new(16).lock(&aig, &mut rng).expect("lockable");
//! let synthesized = Recipe::resyn2().apply(&locked.aig);
//! assert!(synthesized.num_ands() > 0);
//! ```

pub use almost_aig as aig;
pub use almost_attacks as attacks;
pub use almost_circuits as circuits;
pub use almost_core as almost;
pub use almost_locking as locking;
pub use almost_ml as ml;
pub use almost_netlist as netlist;
pub use almost_sat as sat;
