//! Umbrella crate for the ALMOST (DAC 2023) reproduction.
//!
//! This crate re-exports the workspace members under a single namespace so
//! examples and downstream users can depend on one crate:
//!
//! - [`aig`] — and-inverter-graph synthesis substrate (mini-ABC).
//! - [`sat`] — CDCL SAT solver used for equivalence checking, ATPG, and
//!   the key-conditioned miters of oracle-guided attacks.
//! - [`netlist`] — cell library, technology mapping, and PPA analysis.
//! - [`circuits`] — ISCAS85-profile benchmark circuit generators.
//! - [`locking`] — random logic locking (RLL), bubble pushing, re-locking,
//!   SAT-resilient point functions (Anti-SAT, SARLock) with stacked
//!   compounds, and the activated-IC oracle interface.
//! - [`ml`] — dense tensors, reverse-mode autodiff, GIN layers, Adam.
//! - [`attacks`] — oracle-less attacks (OMLA, SCOPE, redundancy, SnapShot)
//!   and the oracle-guided SAT attack family (DIP loop, AppSAT-style
//!   approximate mode, and the Double-DIP point-function breaker).
//! - [`almost`] — the ALMOST framework: recipes, simulated annealing,
//!   adversarial proxy-model training, security-aware synthesis.
//! - [`pool`] — deterministic work-stealing thread pool (`ALMOST_JOBS`).
//! - [`telemetry`] — structured spans, typed events, and pluggable sinks
//!   (stderr progress, `ALMOST_TRACE` JSONL + Chrome trace export,
//!   end-of-run summaries); see the README's Observability section.
//!
//! The two threat models meet in `attacks::report`: oracle-less attacks
//! are scored per key bit, oracle-guided attacks report DIP counts,
//! oracle queries and an UNSAT-proof/CEC verdict, and
//! [`attacks::render_report`] shows them side by side.
//!
//! # Quickstart
//!
//! ```
//! use almost_repro::circuits::IscasBenchmark;
//! use almost_repro::locking::{LockingScheme, Rll};
//! use almost_repro::almost::Recipe;
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let aig = IscasBenchmark::C1355.build();
//! let locked = Rll::new(16).lock(&aig, &mut rng).expect("lockable");
//! let synthesized = Recipe::resyn2().apply(&locked.aig);
//! assert!(synthesized.num_ands() > 0);
//! ```

pub use almost_aig as aig;
pub use almost_attacks as attacks;
pub use almost_circuits as circuits;
pub use almost_core as almost;
pub use almost_locking as locking;
pub use almost_ml as ml;
pub use almost_netlist as netlist;
pub use almost_pool as pool;
pub use almost_sat as sat;
pub use almost_telemetry as telemetry;

/// Helpers shared by the repo's integration tests (compiled into the
/// library so every `tests/*.rs` target can use one copy instead of
/// pasting its own).
pub mod testutil {
    /// True when perf-sensitive test bodies should run: integration tests
    /// that assert wall-time envelopes or allocation counts are only
    /// meaningful in release mode (`cargo test --release`), so debug runs
    /// print a skip note and return early.
    ///
    /// ```ignore
    /// if !almost_repro::testutil::release_mode("my_perf_test") {
    ///     return;
    /// }
    /// ```
    pub fn release_mode(what: &str) -> bool {
        if cfg!(debug_assertions) {
            eprintln!("skipping {what}: debug build (run with --release)");
            false
        } else {
            true
        }
    }
}
