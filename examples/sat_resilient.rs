//! SAT-resilient locking vs. the attack ladder, end to end on c1355:
//!
//! 1. lock with SARLock-over-RLL (point function on top of XOR key gates);
//! 2. show the exact SAT attack stalling against the exponential DIP
//!    floor under a realistic iteration budget;
//! 3. break the compound with Double DIP — the 2-DIP loop strips the
//!    point function and provably recovers the RLL base key;
//! 4. print the DIP-count-vs-key-size scaling table for Anti-SAT and
//!    SARLock on c432 (the family's defence metric: DIPs required, not
//!    accuracy).
//!
//! The demo runs on the XOR-rich c1355 profile because Double DIP's pair
//! constraints bite hardest when wrong base keys are dense-error (every
//! XOR tree propagates a key error to many outputs): the probe batch then
//! excludes every cross-base pair and the 2-DIP loop cannot be lured into
//! enumerating flip cylinders.
//!
//! ```sh
//! cargo run --release --example sat_resilient
//! ```

use almost_repro::attacks::{
    render_dip_scaling, render_report, AttackTarget, DipScalingRow, DoubleDip, OracleGuidedAttack,
    SatAttack, SatAttackConfig, SatAttackMode,
};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{
    apply_key, AntiSat, CircuitOracle, LockingScheme, Rll, SarLock, Stacked,
};
use almost_repro::sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Base (RLL) and overlay (SARLock) key widths of the demo compound.
const RLL_BITS: usize = 16;
const SARLOCK_BITS: usize = 12;

fn main() {
    let design = IscasBenchmark::C1355.build();
    // Same deterministic instance the `double_dip_recovery` regression
    // test pins (XOR miters are instance-sensitive; this one is fast).
    let mut rng = StdRng::seed_from_u64(63);
    let scheme = Stacked::new(Rll::new(RLL_BITS), SarLock::new(SARLOCK_BITS));
    let locked = scheme.lock(&design, &mut rng).expect("lockable");
    println!(
        "c1355 locked with {}: {} key bits ({RLL_BITS} RLL + {SARLOCK_BITS} SARLock), DIP floor 2^{SARLOCK_BITS} - 1 = {}",
        scheme.name(),
        locked.key_size(),
        (1 << SARLOCK_BITS) - 1
    );

    // --- The exact SAT attack stalls on the point function. ---
    // The attacker sees the synthesised netlist, as in the paper's flow.
    let target = AttackTarget::new(locked, almost_repro::aig::Script::resyn2());
    let oracle = CircuitOracle::from_locked(&target.locked);
    let budgeted = SatAttack::new(SatAttackConfig {
        mode: SatAttackMode::Exact,
        max_iterations: 64,
        seed: 0x5A7,
    });
    let sat_outcome = budgeted.attack_with_oracle(&target, &oracle);
    println!("\nexact SAT attack on the deployed netlist, 64-iteration budget:");
    println!("  DIPs spent:          {}", sat_outcome.dip_count());
    println!("  UNSAT proof reached: {}", sat_outcome.proved_exact);
    println!(
        "  functionally correct: {}",
        sat_outcome.functionally_correct
    );
    assert!(
        !sat_outcome.proved_exact,
        "SARLock must hold the exact attack past its budget"
    );

    // --- Double DIP strips the point function. ---
    // (On the pre-synthesis locked netlist: constant-folded key residues
    // stay small there, so each of the four miter copies is cheap.)
    let dd_oracle = CircuitOracle::from_locked(&target.locked);
    let dd = DoubleDip::exact().run(
        &target.locked.aig,
        target.locked.key_input_start,
        target.locked.key_size(),
        &dd_oracle,
    );
    println!("\nDouble-DIP attack on the same lock:");
    println!("  2-DIPs spent:        {}", dd.dip_count());
    println!("  2-DIP loop settled:  {}", dd.two_dip_settled);
    assert!(dd.two_dip_settled, "the 2-DIP loop must converge");
    assert!(
        dd.dip_count() < 256,
        "orders of magnitude below the 2^{SARLOCK_BITS} floor"
    );

    // Base-key verdict: overlay bits replaced by ground truth, then a SAT
    // CEC against the original design. The stripped one-input flip is
    // exactly the corruption SARLock's threat model conceded.
    let mut base_key = dd.recovered.clone();
    base_key[RLL_BITS..].copy_from_slice(&target.locked.key.bits()[RLL_BITS..]);
    let restored = apply_key(&target.locked.aig, target.locked.key_input_start, &base_key);
    match check_equivalence(&design, &restored) {
        Equivalence::Equivalent => {
            println!("  SAT CEC:             recovered RLL base key ≡ original design ✔")
        }
        Equivalence::Counterexample(cex) => panic!("base key is wrong on input {cex:?}"),
    }

    // --- DIP scaling: the defence metric across the family. ---
    let design_432 = IscasBenchmark::C432.build();
    println!("\nDIP-count scaling (exact SAT attack, c432):");
    let mut rows: Vec<DipScalingRow> = Vec::new();
    for k in [4usize, 6, 8] {
        for scheme in [
            Box::new(SarLock::new(k)) as Box<dyn LockingScheme>,
            Box::new(AntiSat::new(k)),
        ] {
            let mut rng = StdRng::seed_from_u64(0x5CA1E ^ k as u64);
            let locked = scheme.lock(&design_432, &mut rng).expect("lockable");
            let oracle = CircuitOracle::from_locked(&locked);
            let run = SatAttack::exact().run(
                &locked.aig,
                locked.key_input_start,
                locked.key_size(),
                &oracle,
            );
            rows.push(DipScalingRow {
                scheme: scheme.name().into(),
                attack: "SAT".into(),
                key_size: k,
                dips: run.iterations.len(),
                finished: run.proved_exact,
                correct: run.proved_exact,
                solver: run.solver,
            });
        }
    }
    print!("{}", render_dip_scaling(&rows));
    println!("(every row meets or exceeds the 2^(k-1) DIP floor the regression tests assert)");

    println!("\ncombined attack report (oracle-guided threat model):");
    print!("{}", render_report(&[], &[sat_outcome]));
    println!(
        "(Double DIP spent {} oracle queries; the report's SAT row shows the \
         defence holding under the same oracle)",
        dd.oracle_queries
    );
}
