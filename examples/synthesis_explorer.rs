//! Synthesis explorer: apply every transformation and several recipes to a
//! benchmark, reporting size/depth and mapped PPA — the "different recipes
//! induce different structure" observation (Fig. 1) that ALMOST builds on.
//!
//! ```sh
//! cargo run --release --example synthesis_explorer
//! ```

use almost_repro::aig::{Pass, Script};
use almost_repro::almost::{
    MappedPpaObjective, PpaObjective, Recipe, SaConfig, Scale, SearchEngine,
};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::netlist::{analyze, map_aig, CellLibrary, MapConfig};
use almost_repro::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    telemetry::init_harness("synthesis_explorer", None);
    let bench = IscasBenchmark::C1908;
    let aig = bench.build();
    let lib = CellLibrary::nangate45();
    println!(
        "{}: {} ANDs, depth {}",
        bench.name(),
        aig.num_ands(),
        aig.depth()
    );

    println!("\nsingle passes:");
    println!("{:<14} {:>7} {:>7}", "pass", "ANDs", "depth");
    for pass in Pass::ALL {
        let out = pass.apply(&aig);
        println!(
            "{:<14} {:>7} {:>7}",
            pass.command(),
            out.num_ands(),
            out.depth()
        );
    }

    println!("\nrecipes (with mapped PPA):");
    println!(
        "{:<12} {:>7} {:>7} {:>10} {:>8} {:>8}",
        "recipe", "ANDs", "depth", "area", "delay", "power"
    );
    let mut rng = StdRng::seed_from_u64(42);
    let mut recipes = vec![("resyn2".to_string(), Recipe::resyn2())];
    for i in 0..4 {
        recipes.push((format!("random{i}"), Recipe::random(10, &mut rng)));
    }
    for (name, recipe) in recipes {
        let out = recipe.apply(&aig);
        let nl = map_aig(&out, &lib, &MapConfig::no_opt());
        let ppa = analyze(&nl, &out, &lib, 4, 7);
        println!(
            "{:<12} {:>7} {:>7} {:>10.1} {:>8.3} {:>8.2}  ({})",
            name,
            out.num_ands(),
            out.depth(),
            ppa.area,
            ppa.delay,
            ppa.power,
            recipe
        );
    }

    // Drive the batched search engine over the recipe space, minimising
    // mapped area — no proxy model needed, the PPA objective stands on
    // its own. Proposal batches share synthesis through the recipe trie;
    // `ALMOST_PROPOSALS` widens the per-step batch.
    println!("\nSA area search on the batched engine:");
    let baseline_aig = Recipe::resyn2().apply(&aig);
    let baseline_nl = map_aig(&baseline_aig, &lib, &MapConfig::no_opt());
    let baseline = analyze(&baseline_nl, &baseline_aig, &lib, 4, 7);
    let objective = MappedPpaObjective {
        accuracy_with: None,
        metric: PpaObjective::Area,
        baseline: &baseline,
        library: &lib,
        analysis_seed: 7,
    };
    let mut engine = SearchEngine::new(aig.clone(), &objective);
    let sa = SaConfig {
        iterations: 12,
        ..Scale::from_env().sa_config(0xE19)
    };
    let run = engine.anneal(Recipe::resyn2(), &sa);
    println!(
        "  best recipe {} -> area ratio {:.3} vs resyn2 (objective {:.1})",
        run.best,
        run.best_score.area_ratio.unwrap_or(f64::NAN),
        run.best_score.objective
    );
    // Cache liveness goes through the stderr progress sink (like the
    // bench harnesses), keeping stdout to the report itself.
    telemetry::progress(|| format!("  [cache] {}", engine.stats().summary()));

    println!("\nresyn2 as a script: {}", Script::resyn2());
    println!("Every recipe preserves function (SAT-checked in the test suite).");
    telemetry::finish();
}
