use almost_circuits::IscasBenchmark;
use almost_core::Recipe;
use std::time::Instant;
fn main() {
    for b in [IscasBenchmark::C1355, IscasBenchmark::C5315, IscasBenchmark::C7552] {
        let aig = b.build();
        let t = Instant::now();
        let out = Recipe::resyn2().apply(&aig);
        println!("{}: {} ANDs -> {} in {:?}", b, aig.num_ands(), out.num_ands(), t.elapsed());
    }
}
