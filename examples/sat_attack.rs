//! Oracle-guided SAT attack demo: recover a 32-bit RLL key on the c1355
//! profile with the DIP loop, prove the recovery with SAT CEC against the
//! unlocked design, then show the AppSAT-style approximate mode and its
//! per-iteration DIP counts.
//!
//! ```sh
//! cargo run --release --example sat_attack
//! ```
//!
//! This is the attack the ALMOST threat model explicitly excludes (no
//! oracle access) — and the reason it must: with an activated chip in
//! hand, RLL falls in seconds regardless of the synthesis recipe.

use almost_repro::aig::Script;
use almost_repro::attacks::{
    render_report, AttackTarget, OracleGuidedAttack, SatAttack, SatAttackConfig,
};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, CircuitOracle, LockingScheme, Oracle, Rll};
use almost_repro::sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let design = IscasBenchmark::C1355.build();
    let mut rng = StdRng::seed_from_u64(0x1355);
    let locked = Rll::new(32).lock(&design, &mut rng).expect("lockable");
    println!(
        "c1355 profile: {} inputs / {} outputs / {} AND nodes",
        design.num_inputs(),
        design.num_outputs(),
        design.num_ands()
    );
    println!("locked with RLL, 32-bit key: {:?}", locked.key);

    // The attacker sees the synthesised netlist and holds an activated chip.
    let target = AttackTarget::new(locked, Script::resyn2());
    let oracle = CircuitOracle::from_locked(&target.locked);
    println!(
        "deployed (resyn2): {} AND nodes\n",
        target.deployed.num_ands()
    );

    // --- Exact mode: run the DIP loop to the UNSAT proof. ---
    let started = Instant::now();
    let outcome = SatAttack::exact().attack_with_oracle(&target, &oracle);
    let elapsed = started.elapsed();
    println!("exact SAT attack:");
    println!("  DIPs found:        {}", outcome.dip_count());
    println!("  oracle queries:    {}", outcome.oracle_queries);
    println!("  UNSAT proof:       {}", outcome.proved_exact);
    println!("  key-bit agreement: {:.1}%", outcome.accuracy * 100.0);
    println!("  wall time:         {elapsed:?}");
    println!(
        "  solver effort:     {} decisions, {} propagations, {} conflicts, {} restarts ({} learnts kept / {} deleted)",
        outcome.solver.decisions,
        outcome.solver.propagations,
        outcome.solver.conflicts,
        outcome.solver.restarts,
        outcome.solver.learnts_kept,
        outcome.solver.learnts_deleted
    );
    assert!(outcome.proved_exact, "exact mode must finish with a proof");

    // Independent verification: unlock the deployed netlist with the
    // recovered key and SAT-CEC it against the original design.
    let unlocked = apply_key(
        &target.deployed,
        target.locked.key_input_start,
        &outcome.recovered,
    );
    match check_equivalence(&design, &unlocked) {
        Equivalence::Equivalent => {
            println!("  SAT CEC:           recovered key ≡ original design ✔")
        }
        Equivalence::Counterexample(cex) => {
            panic!("recovered key is wrong on input {cex:?}")
        }
    }
    assert!(
        elapsed.as_secs() < 60,
        "the 32-bit c1355 attack must finish in under 60 s (took {elapsed:?})"
    );

    // --- Approximate mode: budgeted DIP loop with random settlement. ---
    let approx_oracle = CircuitOracle::from_locked(&target.locked);
    let approx = SatAttack::new(SatAttackConfig::approximate(6, 200));
    let approx_outcome = approx.attack_with_oracle(&target, &approx_oracle);
    println!("\napproximate (AppSAT-style) attack, per-iteration DIP counts:");
    for (i, it) in approx_outcome.iterations.iter().enumerate() {
        match it.settlement_mismatches {
            Some(m) => println!(
                "  iter {:>2}: {:>3} DIPs, {:>6} conflicts, settlement with {m} mismatches",
                i + 1,
                it.dip_count,
                it.conflicts
            ),
            None => println!(
                "  iter {:>2}: {:>3} DIPs, {:>6} conflicts",
                i + 1,
                it.dip_count,
                it.conflicts
            ),
        }
    }
    println!(
        "  candidate key functionally correct: {}",
        approx_outcome.functionally_correct
    );

    println!("\ncombined attack report:");
    print!("{}", render_report(&[], &[outcome, approx_outcome]));
    println!(
        "(oracle served {} queries in total for the approximate run)",
        approx_oracle.queries_served()
    );
}
