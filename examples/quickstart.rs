//! Quickstart: lock a benchmark circuit, run the full ALMOST pipeline
//! (adversarial proxy training + security-aware recipe search), and verify
//! the deployed netlist still computes the original function under the
//! correct key.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use almost_repro::almost::{run_almost, AlmostConfig, SaConfig, Scale};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::apply_key;
use almost_repro::sat::{check_equivalence, Equivalence};

fn main() {
    let scale = Scale::from_env();
    let design = IscasBenchmark::C1355.build();
    println!(
        "design: c1355-profile, {} inputs / {} outputs / {} AND nodes",
        design.num_inputs(),
        design.num_outputs(),
        design.num_ands()
    );

    let config = AlmostConfig {
        key_size: 32,
        proxy: scale.proxy_config(1),
        sa: SaConfig {
            iterations: 10,
            ..scale.sa_config(1)
        },
        ..AlmostConfig::default()
    };
    let outcome = run_almost(&design, &config).expect("c1355 absorbs 32 key gates");

    println!("key:            {:?}", outcome.locked.key);
    println!(
        "S_ALMOST:       {} ({})",
        outcome.recipe,
        outcome.recipe.as_script()
    );
    println!(
        "deployed:       {} AND nodes (locked had {})",
        outcome.deployed.num_ands(),
        outcome.locked.aig.num_ands()
    );
    println!(
        "proxy-predicted attack accuracy: {:.2}% (target ~50%)",
        outcome.search.accuracy * 100.0
    );

    // Correct key ⇒ original function, proved by SAT.
    let restored = apply_key(
        &outcome.deployed,
        outcome.locked.key_input_start,
        outcome.locked.key.bits(),
    );
    match check_equivalence(&design, &restored) {
        Equivalence::Equivalent => println!("SAT check: deployed + correct key ≡ original ✔"),
        Equivalence::Counterexample(cex) => {
            panic!("locking/synthesis broke the function on input {cex:?}")
        }
    }
}
