//! Attack evaluation: run all four oracle-less attacks (OMLA, SnapShot,
//! SCOPE, redundancy) against the same locked design under two defences —
//! the `resyn2` baseline and an ALMOST recipe — and compare recoveries.
//!
//! ```sh
//! cargo run --release --example attack_evaluation
//! ```

use almost_repro::almost::{generate_secure_recipe, train_proxy, ProxyKind, Recipe, Scale};
use almost_repro::attacks::{
    AttackTarget, Omla, OmlaConfig, OracleLessAttack, Redundancy, RedundancyConfig, Scope,
    ScopeConfig, Snapshot, SnapshotConfig,
};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{LockingScheme, Rll};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let design = IscasBenchmark::C880.build();
    let mut rng = StdRng::seed_from_u64(0xE0A);
    let locked = Rll::new(32).lock(&design, &mut rng).expect("lockable");
    println!("locked c880-profile with a 32-bit key: {:?}", locked.key);

    // Defender: adversarial proxy + recipe search.
    let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(2));
    let search = generate_secure_recipe(&locked, &proxy, &scale.sa_config(2));
    println!("S_ALMOST = {}", search.recipe);

    let p = scale.proxy_config(3);
    let omla = Omla::new(OmlaConfig {
        hidden: p.hidden,
        layers: p.layers,
        epochs: p.epochs,
        batch_size: p.batch_size,
        learning_rate: p.learning_rate,
        relock_key_size: p.relock_key_size,
        training_samples: p.initial_samples,
        subgraph: p.subgraph,
        functional_signatures: false,
        seed: 11,
    });
    let snapshot = Snapshot::new(SnapshotConfig {
        epochs: p.epochs,
        training_samples: p.initial_samples,
        subgraph: p.subgraph,
        ..SnapshotConfig::default()
    });
    let scope = Scope::new(ScopeConfig {
        max_bits: Some(12),
        ..ScopeConfig::default()
    });
    let redundancy = Redundancy::new(RedundancyConfig {
        fault_samples: 6,
        max_bits: Some(6),
        ..RedundancyConfig::default()
    });
    let attacks: Vec<&dyn OracleLessAttack> = vec![&omla, &snapshot, &scope, &redundancy];

    for (label, recipe) in [
        ("resyn2", Recipe::resyn2()),
        ("ALMOST", search.recipe.clone()),
    ] {
        println!("\n--- defence: {label} ---");
        let target = AttackTarget::new(locked.clone(), recipe.as_script());
        for attack in &attacks {
            let outcome = attack.attack(&target);
            println!(
                "{:<10} accuracy {:>6.2}%  ({} bits unresolved)",
                outcome.attack,
                outcome.accuracy * 100.0,
                outcome.num_unresolved()
            );
        }
    }
    println!("\n(50% = random guessing; ALMOST aims to pull every attack towards it)");
}
