//! `.bench` interoperability: export a generated benchmark to the ISCAS
//! `.bench` format, read it back, lock the parsed circuit and prove
//! functional recovery — demonstrating drop-in support for the real
//! ISCAS85 netlist files.
//!
//! ```sh
//! cargo run --release --example bench_io [path/to/circuit.bench]
//! ```
//!
//! With a path argument, the file is parsed and used instead of the
//! generated circuit.

use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{apply_key, LockingScheme, Rll};
use almost_repro::netlist::bench_format::{parse_bench, write_bench};
use almost_repro::sat::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let aig = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_bench(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
        None => {
            println!("no .bench file given; exporting the generated c432 profile instead");
            let generated = IscasBenchmark::C432.build();
            let text = write_bench(&generated);
            println!("--- first lines of the exported .bench ---");
            for line in text.lines().take(8) {
                println!("{line}");
            }
            println!("-------------------------------------------");
            parse_bench(&text).expect("round-trip")
        }
    };
    println!(
        "circuit: {} inputs / {} outputs / {} AND nodes",
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands()
    );

    let mut rng = StdRng::seed_from_u64(3);
    let locked = Rll::new(16.min(aig.num_ands() / 2))
        .lock(&aig, &mut rng)
        .expect("circuit large enough to lock");
    println!("locked with key {:?}", locked.key);

    let restored = apply_key(&locked.aig, locked.key_input_start, locked.key.bits());
    match check_equivalence(&aig, &restored) {
        Equivalence::Equivalent => println!("SAT: locked + correct key ≡ parsed circuit ✔"),
        Equivalence::Counterexample(cex) => panic!("mismatch on {cex:?}"),
    }
}
