//! Synthesis and backend timing: run `resyn2` on the larger benchmark
//! profiles, map the result onto the NanGate-45-flavoured cell library,
//! and report wall time next to the mapped PPA numbers.
//!
//! ```sh
//! cargo run --release --example timing
//! ```

use almost_repro::almost::Recipe;
use almost_repro::circuits::IscasBenchmark;
use almost_repro::netlist::{analyze, map_aig, CellLibrary, MapConfig};
use std::time::Instant;

fn main() {
    let lib = CellLibrary::nangate45();
    println!(
        "{:<8} {:>7} {:>7} {:>10} {:>10} {:>9} {:>8} {:>9}",
        "bench", "ANDs", "resyn2", "synth", "map", "area", "delay", "power"
    );
    for b in [
        IscasBenchmark::C1355,
        IscasBenchmark::C5315,
        IscasBenchmark::C7552,
    ] {
        let aig = b.build();
        let t_synth = Instant::now();
        let out = Recipe::resyn2().apply(&aig);
        let synth_time = t_synth.elapsed();

        let t_map = Instant::now();
        let netlist = map_aig(&out, &lib, &MapConfig::default());
        let report = analyze(&netlist, &out, &lib, 8, 1);
        let map_time = t_map.elapsed();

        println!(
            "{:<8} {:>7} {:>7} {:>10.1?} {:>10.1?} {:>9.1} {:>8.3} {:>9.3}",
            b.name(),
            aig.num_ands(),
            out.num_ands(),
            synth_time,
            map_time,
            report.area,
            report.delay,
            report.power
        );
    }
    println!("\n(area in µm², delay in ns, power in arbitrary units — mapped PPA, not AIG size)");
}
