//! Reinforcement-learning recipe search (the paper's future-work
//! direction): train a REINFORCE policy whose reward is the negative
//! Eq.-1 objective, and compare the learned recipe distribution against
//! the simulated-annealing search.
//!
//! ```sh
//! cargo run --release --example rl_recipe_search
//! ```

use almost_repro::almost::{
    generate_secure_recipe, train_proxy, ProxyAccuracyObjective, ProxyKind, ReinforceConfig, Scale,
    SearchEngine,
};
use almost_repro::circuits::IscasBenchmark;
use almost_repro::locking::{LockingScheme, Rll};
use almost_repro::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    telemetry::init_harness("rl_recipe_search", None);
    let scale = Scale::from_env();
    let design = IscasBenchmark::C432.build();
    let mut rng = StdRng::seed_from_u64(0x21);
    let locked = Rll::new(24).lock(&design, &mut rng).expect("lockable");
    let proxy = train_proxy(&locked, ProxyKind::Adversarial, &scale.proxy_config(21));

    // REINFORCE: maximise -(Eq. 1 objective). Episodes evaluate through
    // the search engine, so sampled recipes share synthesis
    // intermediates in the recipe trie.
    let objective = ProxyAccuracyObjective {
        locked: &locked,
        proxy: &proxy,
    };
    let mut engine = SearchEngine::new(locked.aig.clone(), &objective);
    let rl = engine.reinforce(&ReinforceConfig {
        episodes: 20,
        seed: 5,
        ..ReinforceConfig::default()
    });
    println!(
        "REINFORCE best recipe: {} (|acc-0.5| = {:.3})",
        rl.best_recipe, -rl.best_reward
    );
    println!(
        "policy mode: {}  (mean entropy {:.3} nats, uniform = {:.3})",
        rl.policy.mode(),
        rl.policy.mean_entropy(),
        7.0f64.ln()
    );
    // Cache liveness goes to stderr via the progress sink, matching the
    // bench harnesses (stdout keeps only the comparison report).
    telemetry::progress(|| format!("  [cache] RL episodes: {}", engine.stats().summary()));

    // SA for comparison, same budget.
    let mut sa_cfg = scale.sa_config(5);
    sa_cfg.iterations = 20;
    let sa = generate_secure_recipe(&locked, &proxy, &sa_cfg);
    println!(
        "SA best recipe:        {} (|acc-0.5| = {:.3})",
        sa.recipe,
        (sa.accuracy - 0.5).abs()
    );
    telemetry::progress(|| format!("  [cache] SA search:   {}", sa.engine.summary()));
    println!("\nBoth searchers target predicted attack accuracy ~50%;");
    println!("the RL policy additionally yields a *distribution* over resilient recipes.");
    telemetry::finish();
}
